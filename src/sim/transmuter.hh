/**
 * @file
 * The Transmuter timing/energy simulator.
 *
 * Replays a functional Trace under a fixed HwConfig, interleaving core
 * streams by earliest-local-cycle through a shared memory hierarchy
 * (R-DCaches, R-XBars, stride prefetchers, one HBM channel), and
 * produces one EpochRecord per FP-op epoch: elapsed cycles/seconds,
 * energy breakdown, and the Table 2 performance-counter sample.
 */

#ifndef SADAPT_SIM_TRANSMUTER_HH
#define SADAPT_SIM_TRANSMUTER_HH

#include <vector>

#include "obs/metrics.hh"
#include "sim/config.hh"
#include "sim/counters.hh"
#include "sim/dvfs.hh"
#include "sim/energy.hh"
#include "sim/reconfig.hh"
#include "sim/schedule.hh"
#include "sim/trace.hh"
#include "sim/trace_columnar.hh"

namespace sadapt {

class FaultInjector;

/**
 * Per-GPE scratchpad bank size in SPM L1 mode (Section 3.4: the SPM
 * address space is bank-local, so every SPM op address must fall
 * inside one bank).
 */
constexpr std::uint32_t spmBankBytes = 4 * 1024;

/** Parameters of one simulated system instance. */
struct RunParams
{
    SystemShape shape;

    /** Off-chip memory bandwidth (Section 5.2 default: 1 GB/s). */
    double memBandwidth = 1e9;

    /**
     * Epoch size in FP-ops per GPE (spatial average), Section 5.4:
     * 5k for SpMSpM, 500 for SpMSpV.
     */
    std::uint64_t epochFpOps = 5000;

    EnergyParams energy;
};

/** Per-epoch energy, split by component. */
struct EnergyBreakdown
{
    Joules core = 0.0;       //!< GPE/LCP dynamic op energy
    Joules cache = 0.0;      //!< R-DCache / SPM access energy
    Joules xbar = 0.0;       //!< crossbar traversal energy
    Joules dram = 0.0;       //!< HBM transfer energy
    Joules background = 0.0; //!< leakage + per-cycle clock overhead

    Joules
    total() const
    {
        return core + cache + xbar + dram + background;
    }
};

/** Timing, energy and telemetry of one epoch. */
struct EpochRecord
{
    std::uint32_t index = 0;
    int phase = 0;          //!< explicit phase id active in this epoch
    Cycles cycles = 0;
    Seconds seconds = 0.0;
    double flops = 0.0;     //!< FP-ops executed (incl. FP loads/stores)
    EnergyBreakdown energy;
    PerfCounterSample counters;

    /**
     * False when fault injection dropped this epoch's telemetry (the
     * counters are then zeroed). Always true without an injector.
     */
    bool telemetryValid = true;

    Joules totalEnergy() const { return energy.total(); }

    double
    gflops() const
    {
        return seconds > 0.0 ? flops / seconds / 1e9 : 0.0;
    }
};

/** Result of replaying one trace under one configuration. */
struct SimResult
{
    HwConfig config;
    std::vector<EpochRecord> epochs;

    Seconds totalSeconds() const;
    Joules totalEnergy() const;
    double totalFlops() const;

    /** Average performance, GFLOPS. */
    double gflops() const;

    /** Average energy efficiency, GFLOPS/W. */
    double gflopsPerWatt() const;
};

/**
 * The simulator. Stateless between run() calls: each run models a fresh
 * (cold) device execution under one configuration.
 */
class Transmuter
{
  public:
    explicit Transmuter(const RunParams &params);

    /**
     * Replay a trace under a configuration.
     *
     * The engine consumes columnar SoA spans; the Trace overload
     * converts first (one pass over the ops) and is bit-identical to
     * replaying the equivalent TraceView. Sweeps that replay the same
     * trace many times should convert once (ColumnarTrace::fromTrace
     * or a columnar file) and pass the view.
     *
     * @param trace functional trace (shape must match RunParams).
     * @param cfg the hardware configuration to model.
     */
    SimResult run(const Trace &trace, const HwConfig &cfg) const;

    /** As run(Trace), but over a pre-converted columnar view. */
    SimResult run(const TraceView &trace, const HwConfig &cfg) const;

    /**
     * Live dynamic execution: replay the trace while switching to
     * schedule.configs[e] at the start of epoch e, carrying cache
     * state across epochs and applying flush/penalty effects in-band.
     * This is the ground truth the epoch-stitching methodology
     * (EpochDb/evaluateSchedule) approximates; see the
     * StitchingValidation tests.
     *
     * @param schedule one configuration per epoch (length must match
     *        the trace's epoch count; extra entries are ignored).
     * @param faults optional fault injector: telemetry-path faults
     *        perturb each closing epoch's counters in-band, and
     *        command-path faults can divert the epoch-boundary
     *        reconfiguration away from the scheduled configuration.
     *        Null leaves behaviour bit-identical to the fault-free
     *        path.
     */
    SimResult runSchedule(const Trace &trace, const Schedule &schedule,
                          const ReconfigCostModel &cost_model,
                          bool energy_efficient_mode,
                          FaultInjector *faults = nullptr) const;

    /** As runSchedule(Trace), but over a pre-converted columnar view. */
    SimResult runSchedule(const TraceView &trace,
                          const Schedule &schedule,
                          const ReconfigCostModel &cost_model,
                          bool energy_efficient_mode,
                          FaultInjector *faults = nullptr) const;

    const RunParams &params() const { return paramsV; }

    /**
     * Register the simulator's components (caches, xbar, memory,
     * prefetchers, DVFS) into a metrics registry; every subsequent
     * run exports per-epoch totals under sim/. Pure observer — the
     * simulated timing/energy is bit-identical with or without one
     * attached. Null detaches.
     */
    void setMetrics(obs::MetricRegistry *metrics)
    {
        metricsV = metrics;
    }

  private:
    RunParams paramsV;
    DvfsModel dvfs;
    obs::MetricRegistry *metricsV = nullptr;

    SimResult runImpl(const TraceView &trace, const HwConfig &cfg,
                      const Schedule *schedule,
                      const ReconfigCostModel *cost_model,
                      bool energy_efficient_mode,
                      FaultInjector *faults) const;
};

} // namespace sadapt

#endif // SADAPT_SIM_TRANSMUTER_HH
