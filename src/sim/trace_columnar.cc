/**
 * @file
 * Columnar trace serialization: SoA conversion, the CRC32-framed
 * writer, and the mmap-backed loader. This is the only TU in the tree
 * that may call mmap/munmap or touch raw file descriptors
 * (lint-trace-raw-mmap); everything else goes through the TraceView /
 * ColumnarTrace interface.
 */

#include "sim/trace_columnar.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>

#include "common/logging.hh"
#include "store/crc32.hh"

namespace sadapt {
namespace {

constexpr std::size_t fileHeaderBytes = 16;
constexpr std::size_t frameHeaderBytes = 24;
constexpr std::size_t streamHeaderBytes = 24;
constexpr std::uint32_t streamKindGpe = 0;
constexpr std::uint32_t streamKindLcp = 1;
constexpr std::uint8_t maxOpKindByte =
    static_cast<std::uint8_t>(OpKind::Phase);

std::size_t
pad8(std::size_t n)
{
    return (n + 7) & ~std::size_t{7};
}

/** Little-endian scalar append (the file format is LE-defined). */
template <typename T>
void
putLe(std::string &out, T value)
{
    auto v = static_cast<std::uint64_t>(value);
    for (std::size_t i = 0; i < sizeof(T); ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

template <typename T>
T
getLe(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return static_cast<T>(v);
}

/**
 * Address deltas are computed mod 2^64 and zigzag-folded, so every
 * u64 address round-trips exactly no matter how wildly consecutive
 * addresses jump (Phase markers drop phase ids into the same chain).
 */
std::uint64_t
zigzag(std::uint64_t delta)
{
    const auto s = static_cast<std::int64_t>(delta);
    return (delta << 1) ^ static_cast<std::uint64_t>(s >> 63);
}

std::uint64_t
unzigzag(std::uint64_t z)
{
    return (z >> 1) ^ (0 - (z & 1));
}

void
putVarint(std::string &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

/** Encode one stream's three columns as a STREAM section payload. */
std::string
encodeStreamPayload(std::uint32_t core_kind, std::uint32_t id,
                    const std::vector<TraceOp> &ops)
{
    std::string addr_col;
    addr_col.reserve(ops.size() * 2);
    Addr prev = 0;
    for (const TraceOp &op : ops) {
        putVarint(addr_col, zigzag(op.addr - prev));
        prev = op.addr;
    }

    std::string payload;
    payload.reserve(streamHeaderBytes + pad8(ops.size()) +
                    pad8(2 * ops.size()) + addr_col.size());
    putLe<std::uint32_t>(payload, core_kind);
    putLe<std::uint32_t>(payload, id);
    putLe<std::uint64_t>(payload, ops.size());
    putLe<std::uint64_t>(payload, addr_col.size());
    for (const TraceOp &op : ops)
        payload.push_back(static_cast<char>(op.kind));
    payload.resize(pad8(payload.size()), '\0');
    for (const TraceOp &op : ops)
        putLe<std::uint16_t>(payload, op.pc);
    payload.resize(pad8(payload.size()), '\0');
    payload += addr_col;
    return payload;
}

void
appendFrame(std::string &out, TraceSection kind,
            const std::string &payload)
{
    putLe<std::uint32_t>(out, traceColumnarFrameMagic);
    putLe<std::uint32_t>(out, static_cast<std::uint32_t>(kind));
    putLe<std::uint64_t>(out, payload.size());
    putLe<std::uint32_t>(out, store::crc32(payload));
    putLe<std::uint32_t>(out, 0);
    out += payload;
    out.append(pad8(payload.size()) - payload.size(), '\0');
}

Status
columnarError(const std::string &path, const std::string &what)
{
    return Status::error("columnar trace " + path + ": " + what);
}

/** An open mmap (or heap-copy fallback) of a whole file. */
struct Mapping
{
    std::shared_ptr<void> owner;
    const std::uint8_t *data = nullptr;
    std::size_t size = 0;
};

Result<Mapping>
mapFile(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return columnarError(path, "cannot open file");
    struct ::stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        return columnarError(path, "cannot stat file");
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    Mapping m;
    m.size = size;
    if (size > 0) {
        void *p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
        if (p != MAP_FAILED) {
            m.data = static_cast<const std::uint8_t *>(p);
            m.owner = std::shared_ptr<void>(
                p, [size](void *q) { ::munmap(q, size); });
        } else {
            // Fall back to a heap copy; the view interface does not
            // care where the bytes live.
            auto buf = std::make_shared<std::vector<std::uint8_t>>(size);
            std::size_t got = 0;
            while (got < size) {
                const ::ssize_t n =
                    ::read(fd, buf->data() + got, size - got);
                if (n <= 0)
                    break;
                got += static_cast<std::size_t>(n);
            }
            if (got != size) {
                ::close(fd);
                return columnarError(path, "short read");
            }
            m.data = buf->data();
            m.owner = std::move(buf);
        }
    }
    ::close(fd);
    return m;
}

/** One parsed frame: section kind plus a CRC-verified payload span. */
struct Frame
{
    TraceSection kind;
    const std::uint8_t *payload;
    std::size_t size;
};

Result<Frame>
parseFrame(const std::string &path, const Mapping &m, std::size_t &off)
{
    if (m.size - off < frameHeaderBytes)
        return columnarError(path, "torn tail: truncated frame header");
    const std::uint8_t *h = m.data + off;
    if (getLe<std::uint32_t>(h) != traceColumnarFrameMagic)
        return columnarError(path, "bad frame magic");
    const auto kind = getLe<std::uint32_t>(h + 4);
    const auto len = getLe<std::uint64_t>(h + 8);
    const auto crc = getLe<std::uint32_t>(h + 16);
    if (kind < static_cast<std::uint32_t>(TraceSection::Meta) ||
        kind > static_cast<std::uint32_t>(TraceSection::End))
        return columnarError(path, "unknown section kind");
    const std::size_t body = m.size - off - frameHeaderBytes;
    if (len > body || pad8(len) > body)
        return columnarError(path, "torn tail: truncated payload");
    const std::uint8_t *payload = h + frameHeaderBytes;
    if (store::crc32(payload, len) != crc)
        return columnarError(path, "payload CRC mismatch");
    off += frameHeaderBytes + pad8(len);
    return Frame{static_cast<TraceSection>(kind), payload, len};
}

/** Cursor over a payload with bounds-checked LE reads. */
struct PayloadReader
{
    const std::uint8_t *p;
    std::size_t size;
    std::size_t off = 0;

    template <typename T>
    bool
    read(T &out)
    {
        if (size - off < sizeof(T))
            return false;
        out = getLe<T>(p + off);
        off += sizeof(T);
        return true;
    }
};

} // namespace

ColumnarTrace
ColumnarTrace::fromTrace(const Trace &trace, std::uint64_t footprint,
                         std::uint64_t epoch_fpops,
                         std::uint64_t declared_epochs)
{
    ColumnarTrace ct;
    ct.shapeV = trace.shape();
    ct.footprintV = footprint;
    ct.epochFpOpsV = epoch_fpops;
    ct.declaredEpochsV = declared_epochs;
    ct.phasesV = trace.phaseNames();

    const std::uint32_t num_gpes = ct.shapeV.numGpes();
    const std::uint32_t num_streams = num_gpes + ct.shapeV.tiles;
    std::size_t total = 0;
    for (std::uint32_t g = 0; g < num_gpes; ++g)
        total += trace.gpeStream(g).size();
    for (std::uint32_t t = 0; t < ct.shapeV.tiles; ++t)
        total += trace.lcpStream(t).size();

    ct.kindsV.resize(total);
    ct.pcsV.resize(total);
    ct.addrsV.resize(total);
    ct.streamsV.resize(num_streams);
    ct.totalOpsV = total;

    std::size_t off = 0;
    for (std::uint32_t s = 0; s < num_streams; ++s) {
        const bool is_gpe = s < num_gpes;
        const std::vector<TraceOp> &ops =
            is_gpe ? trace.gpeStream(s) : trace.lcpStream(s - num_gpes);
        StreamView &sv = ct.streamsV[s];
        sv.kind = ct.kindsV.data() + off;
        sv.pc = ct.pcsV.data() + off;
        sv.addr = ct.addrsV.data() + off;
        sv.size = ops.size();
        for (const TraceOp &op : ops) {
            ct.kindsV[off] = static_cast<std::uint8_t>(op.kind);
            ct.pcsV[off] = op.pc;
            ct.addrsV[off] = op.addr;
            if (is_gpe && isFpKind(op.kind))
                ++ct.totalFpOpsV;
            ++off;
        }
    }
    return ct;
}

Trace
ColumnarTrace::toTrace() const
{
    Trace trace(shapeV);
    for (const std::string &name : phasesV)
        trace.registerPhase(name);
    const std::uint32_t num_gpes = shapeV.numGpes();
    const TraceView v = view();
    for (std::uint32_t s = 0; s < streamsV.size(); ++s) {
        const StreamView &sv = v.streams[s];
        for (std::size_t i = 0; i < sv.size; ++i) {
            const TraceOp op{sv.addr[i], sv.pc[i],
                             static_cast<OpKind>(sv.kind[i])};
            if (s < num_gpes)
                trace.pushGpe(s, op);
            else
                trace.pushLcp(s - num_gpes, op);
        }
    }
    return trace;
}

TraceView
ColumnarTrace::view() const
{
    TraceView v;
    v.shape = shapeV;
    v.streams = streamsV;
    v.phases = phasesV;
    v.totalFpOps = totalFpOpsV;
    v.totalOps = totalOpsV;
    return v;
}

Status
writeTraceColumnarFile(const Trace &trace, const std::string &path,
                       std::uint64_t footprint,
                       std::uint64_t epoch_fpops,
                       std::uint64_t declared_epochs)
{
    const SystemShape &shape = trace.shape();
    const std::vector<std::string> &phases = trace.phaseNames();

    std::uint64_t total_fpops = 0;
    std::uint64_t total_ops = 0;
    for (std::uint32_t g = 0; g < shape.numGpes(); ++g) {
        for (const TraceOp &op : trace.gpeStream(g))
            if (isFpKind(op.kind))
                ++total_fpops;
        total_ops += trace.gpeStream(g).size();
    }
    for (std::uint32_t t = 0; t < shape.tiles; ++t)
        total_ops += trace.lcpStream(t).size();

    std::string meta;
    putLe<std::uint32_t>(meta, shape.tiles);
    putLe<std::uint32_t>(meta, shape.gpesPerTile);
    putLe<std::uint64_t>(meta, footprint);
    putLe<std::uint64_t>(meta, epoch_fpops);
    putLe<std::uint64_t>(meta, declared_epochs);
    putLe<std::uint64_t>(meta, total_fpops);
    putLe<std::uint64_t>(meta, total_ops);
    putLe<std::uint32_t>(meta, static_cast<std::uint32_t>(phases.size()));
    for (const std::string &name : phases) {
        putLe<std::uint32_t>(meta, static_cast<std::uint32_t>(name.size()));
        meta += name;
    }

    std::string out;
    out.append(traceColumnarMagic, sizeof traceColumnarMagic);
    putLe<std::uint32_t>(out, traceColumnarVersion);
    putLe<std::uint32_t>(out, 0);
    appendFrame(out, TraceSection::Meta, meta);
    for (std::uint32_t g = 0; g < shape.numGpes(); ++g)
        appendFrame(out, TraceSection::Stream,
                    encodeStreamPayload(streamKindGpe, g,
                                        trace.gpeStream(g)));
    for (std::uint32_t t = 0; t < shape.tiles; ++t)
        appendFrame(out, TraceSection::Stream,
                    encodeStreamPayload(streamKindLcp, t,
                                        trace.lcpStream(t)));
    appendFrame(out, TraceSection::End, std::string());

    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        return columnarError(path, "cannot open for writing");
    f.write(out.data(), static_cast<std::streamsize>(out.size()));
    f.flush();
    if (!f)
        return columnarError(path, "write failed");
    return Status::ok();
}

Result<ColumnarTrace>
readTraceColumnarFile(const std::string &path)
{
    Result<Mapping> mapped = mapFile(path);
    if (!mapped.isOk())
        return mapped.status();
    const Mapping &m = mapped.value();

    if (m.size < fileHeaderBytes ||
        std::memcmp(m.data, traceColumnarMagic,
                    sizeof traceColumnarMagic) != 0)
        return columnarError(path, "bad file magic");
    const auto version = getLe<std::uint32_t>(m.data + 8);
    if (version != traceColumnarVersion)
        return columnarError(path, "unsupported version " +
                                       std::to_string(version));

    std::size_t off = fileHeaderBytes;
    Result<Frame> meta_frame = parseFrame(path, m, off);
    if (!meta_frame.isOk())
        return meta_frame.status();
    if (meta_frame.value().kind != TraceSection::Meta)
        return columnarError(path, "first section is not meta");

    ColumnarTrace ct;
    {
        PayloadReader r{meta_frame.value().payload,
                        meta_frame.value().size};
        std::uint32_t tiles = 0, gpes_per_tile = 0, nphases = 0;
        if (!r.read(tiles) || !r.read(gpes_per_tile) ||
            !r.read(ct.footprintV) || !r.read(ct.epochFpOpsV) ||
            !r.read(ct.declaredEpochsV) || !r.read(ct.totalFpOpsV) ||
            !r.read(ct.totalOpsV) || !r.read(nphases))
            return columnarError(path, "truncated meta section");
        if (tiles == 0 || gpes_per_tile == 0 ||
            tiles > maxTraceGpes || gpes_per_tile > maxTraceGpes ||
            std::uint64_t{tiles} * gpes_per_tile > maxTraceGpes)
            return columnarError(path, "implausible system shape");
        ct.shapeV = SystemShape{tiles, gpes_per_tile};
        ct.phasesV.reserve(nphases);
        for (std::uint32_t i = 0; i < nphases; ++i) {
            std::uint32_t len = 0;
            if (!r.read(len) || r.size - r.off < len)
                return columnarError(path, "truncated phase name");
            ct.phasesV.emplace_back(
                reinterpret_cast<const char *>(r.p + r.off), len);
            r.off += len;
        }
        if (r.off != r.size)
            return columnarError(path, "trailing bytes in meta section");
    }

    const std::uint32_t num_gpes = ct.shapeV.numGpes();
    const std::uint32_t num_streams = num_gpes + ct.shapeV.tiles;
    ct.streamsV.resize(num_streams);
    ct.addrsV.resize(ct.totalOpsV);
    // Zero-copy is only sound when the file's LE u16 pc column matches
    // the host layout; a big-endian host decodes into owned storage.
    const bool host_le = std::endian::native == std::endian::little;
    if (!host_le)
        ct.pcsV.resize(ct.totalOpsV);

    std::uint64_t seen_ops = 0;
    std::uint64_t seen_fpops = 0;
    for (std::uint32_t s = 0; s < num_streams; ++s) {
        Result<Frame> frame = parseFrame(path, m, off);
        if (!frame.isOk())
            return frame.status();
        if (frame.value().kind != TraceSection::Stream)
            return columnarError(path, "missing stream section");
        PayloadReader r{frame.value().payload, frame.value().size};
        std::uint32_t core_kind = 0, id = 0;
        std::uint64_t nops = 0, addr_bytes = 0;
        if (!r.read(core_kind) || !r.read(id) || !r.read(nops) ||
            !r.read(addr_bytes))
            return columnarError(path, "truncated stream header");
        const bool is_gpe = s < num_gpes;
        const std::uint32_t want_kind =
            is_gpe ? streamKindGpe : streamKindLcp;
        const std::uint32_t want_id = is_gpe ? s : s - num_gpes;
        if (core_kind != want_kind || id != want_id)
            return columnarError(path,
                                 "stream sections out of canonical order");
        if (nops > ct.totalOpsV - seen_ops)
            return columnarError(path, "column length disagreement: "
                                       "stream op counts exceed meta total");
        const std::size_t kind_off = r.off;
        const std::size_t pc_off = kind_off + pad8(nops);
        const std::size_t addr_off = pc_off + pad8(2 * nops);
        if (addr_off > r.size || r.size - addr_off != addr_bytes)
            return columnarError(path, "column length disagreement: "
                                       "payload size vs declared columns");

        const std::uint8_t *kind_col = r.p + kind_off;
        for (std::uint64_t i = 0; i < nops; ++i) {
            if (kind_col[i] > maxOpKindByte)
                return columnarError(path, "invalid op kind byte");
            if (is_gpe &&
                isFpKind(static_cast<OpKind>(kind_col[i])))
                ++seen_fpops;
        }
        StreamView &sv = ct.streamsV[s];
        sv.size = nops;
        sv.kind = kind_col;
        if (host_le) {
            sv.pc = reinterpret_cast<const std::uint16_t *>(r.p + pc_off);
        } else {
            std::uint16_t *dst = ct.pcsV.data() + seen_ops;
            for (std::uint64_t i = 0; i < nops; ++i)
                dst[i] = getLe<std::uint16_t>(r.p + pc_off + 2 * i);
            sv.pc = dst;
        }

        // Single streaming pass: delta-varint decode into the owned
        // address buffer, validating Phase markers as they appear.
        Addr *addr_dst = ct.addrsV.data() + seen_ops;
        sv.addr = addr_dst;
        const std::uint8_t *ap = r.p + addr_off;
        const std::uint8_t *aend = ap + addr_bytes;
        Addr prev = 0;
        for (std::uint64_t i = 0; i < nops; ++i) {
            std::uint64_t z = 0;
            int shift = 0;
            while (true) {
                if (ap >= aend || shift > 63)
                    return columnarError(path,
                                         "column length disagreement: "
                                         "truncated address varint");
                const std::uint8_t b = *ap++;
                z |= static_cast<std::uint64_t>(b & 0x7f) << shift;
                if (!(b & 0x80))
                    break;
                shift += 7;
            }
            prev += unzigzag(z);
            addr_dst[i] = prev;
            if (static_cast<OpKind>(kind_col[i]) == OpKind::Phase &&
                prev >= ct.phasesV.size())
                return columnarError(path,
                                     "phase op references undeclared phase");
        }
        if (ap != aend)
            return columnarError(path, "column length disagreement: "
                                       "unused address column bytes");
        seen_ops += nops;
    }
    if (seen_ops != ct.totalOpsV)
        return columnarError(path, "column length disagreement: "
                                   "stream op counts below meta total");
    if (seen_fpops != ct.totalFpOpsV)
        return columnarError(path,
                             "meta fp-op total disagrees with streams");

    Result<Frame> end_frame = parseFrame(path, m, off);
    if (!end_frame.isOk())
        return end_frame.status();
    if (end_frame.value().kind != TraceSection::End ||
        end_frame.value().size != 0)
        return columnarError(path, "missing end section");
    if (off != m.size)
        return columnarError(path, "trailing bytes after end section");

    ct.mappingV = m.owner;
    return ct;
}

bool
traceFileIsColumnar(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    char magic[sizeof traceColumnarMagic] = {};
    f.read(magic, sizeof magic);
    return f.gcount() == sizeof magic &&
           std::memcmp(magic, traceColumnarMagic, sizeof magic) == 0;
}

} // namespace sadapt
