#include "sim/xbar.hh"

#include "common/logging.hh"

namespace sadapt {

Crossbar::Crossbar(std::uint32_t num_ports, Cycles arb_cycles)
    : arbCycles(arb_cycles), busyUntil(num_ports, 0)
{
    SADAPT_ASSERT(num_ports > 0, "crossbar needs at least one port");
}

double
Crossbar::contentionRatio() const
{
    return accessCount == 0 ? 0.0
        : static_cast<double>(contentionCount) /
          static_cast<double>(accessCount);
}

void
Crossbar::resetStats()
{
    accessCount = 0;
    contentionCount = 0;
}

void
Crossbar::reset()
{
    for (auto &b : busyUntil)
        b = 0;
    resetStats();
}

} // namespace sadapt
