#include "sim/schedule.hh"

namespace sadapt {

Schedule
Schedule::uniform(const HwConfig &cfg, std::size_t epochs)
{
    Schedule s;
    s.configs.assign(epochs, cfg);
    return s;
}

std::size_t
Schedule::switchCount() const
{
    std::size_t n = 0;
    for (std::size_t e = 1; e < configs.size(); ++e)
        n += !(configs[e] == configs[e - 1]);
    return n;
}

} // namespace sadapt
