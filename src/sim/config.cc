#include "sim/config.hh"

#include <array>
#include <cstdlib>

#include "common/logging.hh"
#include "common/rng.hh"

namespace sadapt {

namespace {

constexpr std::array<std::uint32_t, 5> capBytes = {
    4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024,
};

constexpr std::array<double, 6> clockHzTable = {
    31.25e6, 62.5e6, 125e6, 250e6, 500e6, 1000e6,
};

constexpr std::array<std::uint32_t, 3> prefetchTable = {0, 4, 8};

} // namespace

std::uint32_t
HwConfig::l1CapBytes() const
{
    return capBytes[l1CapIdx];
}

std::uint32_t
HwConfig::l2CapBytes() const
{
    return capBytes[l2CapIdx];
}

Hertz
HwConfig::clockHz() const
{
    return clockHzTable[clockIdx];
}

std::uint32_t
HwConfig::prefetchDegree() const
{
    return prefetchTable[prefetchIdx];
}

std::string
HwConfig::label() const
{
    auto mode = [](SharingMode m) {
        return m == SharingMode::Shared ? "shr" : "prv";
    };
    return str(l1Type == MemType::Cache ? "cache" : "spm",
               " L1:", l1CapBytes() / 1024, "kB/", mode(l1Sharing),
               " L2:", l2CapBytes() / 1024, "kB/", mode(l2Sharing),
               " ", clockHz() / 1e6, "MHz pf", prefetchDegree());
}

std::string
HwConfig::toSpec() const
{
    auto mode = [](SharingMode m) {
        return m == SharingMode::Shared ? "shared" : "private";
    };
    return str("type=", l1Type == MemType::Cache ? "cache" : "spm",
               ",l1_sharing=", mode(l1Sharing),
               ",l2_sharing=", mode(l2Sharing),
               ",l1_cap=", l1CapBytes() / 1024,
               ",l2_cap=", l2CapBytes() / 1024,
               ",clock=", clockHz() / 1e6,
               ",prefetch=", prefetchDegree());
}

std::uint32_t
HwConfig::encode() const
{
    std::uint32_t code = 0;
    for (Param p : allParams())
        code = code * paramCardinality(p) + paramValue(*this, p);
    return code;
}

const std::vector<Param> &
allParams()
{
    static const std::vector<Param> params = {
        Param::L1Sharing, Param::L2Sharing, Param::L1Cap,
        Param::L2Cap, Param::Clock, Param::Prefetch,
    };
    return params;
}

std::string
paramName(Param p)
{
    switch (p) {
      case Param::L1Sharing: return "l1_sharing";
      case Param::L2Sharing: return "l2_sharing";
      case Param::L1Cap: return "l1_capacity";
      case Param::L2Cap: return "l2_capacity";
      case Param::Clock: return "clock";
      case Param::Prefetch: return "prefetch";
    }
    panic("bad Param");
}

std::uint32_t
paramCardinality(Param p)
{
    switch (p) {
      case Param::L1Sharing: return 2;
      case Param::L2Sharing: return 2;
      case Param::L1Cap: return capBytes.size();
      case Param::L2Cap: return capBytes.size();
      case Param::Clock: return clockHzTable.size();
      case Param::Prefetch: return prefetchTable.size();
    }
    panic("bad Param");
}

std::uint32_t
paramValue(const HwConfig &cfg, Param p)
{
    switch (p) {
      case Param::L1Sharing:
        return cfg.l1Sharing == SharingMode::Shared ? 0 : 1;
      case Param::L2Sharing:
        return cfg.l2Sharing == SharingMode::Shared ? 0 : 1;
      case Param::L1Cap: return cfg.l1CapIdx;
      case Param::L2Cap: return cfg.l2CapIdx;
      case Param::Clock: return cfg.clockIdx;
      case Param::Prefetch: return cfg.prefetchIdx;
    }
    panic("bad Param");
}

HwConfig
withParam(const HwConfig &cfg, Param p, std::uint32_t value)
{
    SADAPT_ASSERT(value < paramCardinality(p), "param value out of range");
    HwConfig out = cfg;
    const auto v8 = static_cast<std::uint8_t>(value);
    switch (p) {
      case Param::L1Sharing:
        out.l1Sharing =
            value == 0 ? SharingMode::Shared : SharingMode::Private;
        break;
      case Param::L2Sharing:
        out.l2Sharing =
            value == 0 ? SharingMode::Shared : SharingMode::Private;
        break;
      case Param::L1Cap: out.l1CapIdx = v8; break;
      case Param::L2Cap: out.l2CapIdx = v8; break;
      case Param::Clock: out.clockIdx = v8; break;
      case Param::Prefetch: out.prefetchIdx = v8; break;
    }
    return out;
}

CostClass
paramCostClass(Param p)
{
    switch (p) {
      case Param::Clock:
      case Param::Prefetch:
        return CostClass::SuperFine;
      case Param::L1Sharing:
      case Param::L2Sharing:
      case Param::L1Cap:
      case Param::L2Cap:
        return CostClass::Fine;
    }
    panic("bad Param");
}

ConfigSpace::ConfigSpace(MemType l1_type)
    : l1TypeV(l1_type)
{
}

std::uint32_t
ConfigSpace::size() const
{
    std::uint32_t n = 1;
    for (Param p : allParams())
        n *= paramCardinality(p);
    return n;
}

HwConfig
ConfigSpace::decode(std::uint32_t code) const
{
    SADAPT_ASSERT(code < size(), "config code out of range");
    HwConfig cfg;
    cfg.l1Type = l1TypeV;
    const auto &params = allParams();
    for (auto it = params.rbegin(); it != params.rend(); ++it) {
        const std::uint32_t card = paramCardinality(*it);
        cfg = withParam(cfg, *it, code % card);
        code /= card;
    }
    return cfg;
}

std::vector<HwConfig>
ConfigSpace::sample(std::size_t k, Rng &rng) const
{
    std::vector<HwConfig> out;
    out.reserve(k);
    for (std::size_t code : rng.sampleIndices(size(), k))
        out.push_back(decode(static_cast<std::uint32_t>(code)));
    return out;
}

std::vector<HwConfig>
ConfigSpace::neighbors(const HwConfig &cfg) const
{
    // Enumerate the cartesian product of {v-1, v, v+1} (clamped, deduped)
    // per parameter, excluding cfg itself.
    std::vector<HwConfig> out;
    std::vector<std::vector<std::uint32_t>> choices;
    for (Param p : allParams()) {
        const std::uint32_t v = paramValue(cfg, p);
        const std::uint32_t card = paramCardinality(p);
        std::vector<std::uint32_t> c;
        if (v > 0)
            c.push_back(v - 1);
        c.push_back(v);
        if (v + 1 < card)
            c.push_back(v + 1);
        choices.push_back(std::move(c));
    }
    std::vector<std::size_t> idx(choices.size(), 0);
    while (true) {
        HwConfig n = cfg;
        const auto &params = allParams();
        for (std::size_t i = 0; i < params.size(); ++i)
            n = withParam(n, params[i], choices[i][idx[i]]);
        if (!(n == cfg))
            out.push_back(n);
        // Odometer increment.
        std::size_t i = 0;
        while (i < idx.size() && ++idx[i] == choices[i].size()) {
            idx[i] = 0;
            ++i;
        }
        if (i == idx.size())
            break;
    }
    return out;
}

std::vector<HwConfig>
ConfigSpace::sweepDimension(const HwConfig &cfg, Param p) const
{
    std::vector<HwConfig> out;
    for (std::uint32_t v = 0; v < paramCardinality(p); ++v)
        out.push_back(withParam(cfg, p, v));
    return out;
}

HwConfig
baselineConfig(MemType l1_type)
{
    // Table 4: 4 kB shared L1, 4 kB shared L2, 1 GHz, prefetch degree 4.
    HwConfig cfg;
    cfg.l1Type = l1_type;
    cfg.l1Sharing = SharingMode::Shared;
    cfg.l2Sharing = SharingMode::Shared;
    cfg.l1CapIdx = 0;
    cfg.l2CapIdx = 0;
    cfg.clockIdx = 5;
    cfg.prefetchIdx = 1;
    return cfg;
}

HwConfig
bestAvgConfig(MemType l1_type)
{
    HwConfig cfg;
    cfg.l1Type = l1_type;
    if (l1_type == MemType::Cache) {
        // Table 4: 4 kB private L1, 4 kB shared L2, 1 GHz, prefetch off.
        cfg.l1Sharing = SharingMode::Private;
        cfg.l2Sharing = SharingMode::Shared;
        cfg.l1CapIdx = 0;
        cfg.l2CapIdx = 0;
        cfg.clockIdx = 5;
        cfg.prefetchIdx = 0;
    } else {
        // Table 4: 4 kB private L1 SPM, 32 kB private L2, 500 MHz, pf 8.
        cfg.l1Sharing = SharingMode::Private;
        cfg.l2Sharing = SharingMode::Private;
        cfg.l1CapIdx = 0;
        cfg.l2CapIdx = 3;
        cfg.clockIdx = 4;
        cfg.prefetchIdx = 2;
    }
    return cfg;
}

HwConfig
maxConfig(MemType l1_type)
{
    // Table 4: 64 kB shared L1, 64 kB shared L2, 1 GHz, prefetch 8.
    HwConfig cfg;
    cfg.l1Type = l1_type;
    cfg.l1Sharing = SharingMode::Shared;
    cfg.l2Sharing = SharingMode::Shared;
    cfg.l1CapIdx = 4;
    cfg.l2CapIdx = 4;
    cfg.clockIdx = 5;
    cfg.prefetchIdx = 2;
    return cfg;
}

namespace {

/** Index of value in a table, or -1 when absent. */
template <typename Table, typename V>
int
tableIndex(const Table &table, V value)
{
    for (std::size_t i = 0; i < table.size(); ++i)
        if (table[i] == value)
            return static_cast<int>(i);
    return -1;
}

Status
applyPreset(HwConfig &cfg, const std::string &name)
{
    const MemType t = cfg.l1Type;
    if (name == "baseline")
        cfg = baselineConfig(t);
    else if (name == "bestavg")
        cfg = bestAvgConfig(t);
    else if (name == "max")
        cfg = maxConfig(t);
    else
        return Status::error(str("unknown config preset '", name,
                                 "' (expected baseline, bestavg or "
                                 "max, or key=value pairs)"));
    return Status::ok();
}

Result<SharingMode>
parseSharing(const std::string &key, const std::string &value)
{
    if (value == "shared" || value == "shr")
        return SharingMode::Shared;
    if (value == "private" || value == "prv")
        return SharingMode::Private;
    return Result<SharingMode>::error(
        str("bad ", key, " '", value,
            "' (expected shared/shr or private/prv)"));
}

} // namespace

Result<HwConfig>
parseConfig(const std::string &text)
{
    HwConfig cfg = baselineConfig();
    std::size_t pos = 0;
    bool first = true;
    while (pos <= text.size()) {
        std::size_t end = text.find(',', pos);
        if (end == std::string::npos)
            end = text.size();
        std::string item = text.substr(pos, end - pos);
        pos = end + 1;
        // Trim surrounding whitespace.
        const auto b = item.find_first_not_of(" \t");
        if (b == std::string::npos) {
            if (first && pos > text.size())
                break; // wholly empty spec -> baseline
            first = false;
            continue;
        }
        item = item.substr(b, item.find_last_not_of(" \t") - b + 1);

        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) {
            if (!first) {
                return Result<HwConfig>::error(
                    str("config preset '", item,
                        "' must be the first element"));
            }
            const Status s = applyPreset(cfg, item);
            if (!s.isOk())
                return Result<HwConfig>::error(s.message());
            first = false;
            continue;
        }
        first = false;
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        if (key.empty() || value.empty()) {
            return Result<HwConfig>::error(
                str("empty key or value in config item '", item, "'"));
        }

        if (key == "type") {
            if (value == "cache") {
                cfg.l1Type = MemType::Cache;
            } else if (value == "spm") {
                cfg.l1Type = MemType::Spm;
            } else {
                return Result<HwConfig>::error(
                    str("bad type '", value,
                        "' (expected cache or spm)"));
            }
        } else if (key == "l1_sharing" || key == "l2_sharing") {
            auto mode = parseSharing(key, value);
            if (!mode.isOk())
                return Result<HwConfig>::error(mode.message());
            (key == "l1_sharing" ? cfg.l1Sharing : cfg.l2Sharing) =
                mode.value();
        } else if (key == "l1_cap" || key == "l2_cap") {
            char *rest = nullptr;
            const double kb = std::strtod(value.c_str(), &rest);
            const int idx = tableIndex(
                capBytes, static_cast<std::uint32_t>(kb * 1024.0));
            if (rest == value.c_str() || *rest != '\0' || idx < 0) {
                return Result<HwConfig>::error(
                    str("bad ", key, " '", value,
                        "' (expected 4, 8, 16, 32 or 64 kB)"));
            }
            (key == "l1_cap" ? cfg.l1CapIdx : cfg.l2CapIdx) =
                static_cast<std::uint8_t>(idx);
        } else if (key == "clock") {
            char *rest = nullptr;
            const double mhz = std::strtod(value.c_str(), &rest);
            const int idx = tableIndex(clockHzTable, mhz * 1e6);
            if (rest == value.c_str() || *rest != '\0' || idx < 0) {
                return Result<HwConfig>::error(
                    str("bad clock '", value,
                        "' (expected 31.25, 62.5, 125, 250, 500 or "
                        "1000 MHz)"));
            }
            cfg.clockIdx = static_cast<std::uint8_t>(idx);
        } else if (key == "prefetch") {
            char *rest = nullptr;
            const long deg = std::strtol(value.c_str(), &rest, 10);
            const int idx = tableIndex(
                prefetchTable, static_cast<std::uint32_t>(deg));
            if (rest == value.c_str() || *rest != '\0' || deg < 0 ||
                idx < 0) {
                return Result<HwConfig>::error(
                    str("bad prefetch '", value,
                        "' (expected 0, 4 or 8)"));
            }
            cfg.prefetchIdx = static_cast<std::uint8_t>(idx);
        } else {
            return Result<HwConfig>::error(
                str("unknown config key '", key,
                    "' (expected type, l1_sharing, l2_sharing, "
                    "l1_cap, l2_cap, clock or prefetch)"));
        }
    }
    return cfg;
}

} // namespace sadapt
