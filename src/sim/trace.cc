#include "sim/trace.hh"

#include "common/logging.hh"

namespace sadapt {

Trace::Trace(SystemShape shape)
    : shapeV(shape),
      gpeStreams(shape.numGpes()),
      lcpStreams(shape.tiles)
{
}

void
Trace::beginPhase(const std::string &name)
{
    const Addr id = phases.size();
    phases.push_back(name);
    TraceOp marker{id, 0, OpKind::Phase};
    for (auto &s : gpeStreams)
        s.push_back(marker);
    for (auto &s : lcpStreams)
        s.push_back(marker);
}

const std::vector<TraceOp> &
Trace::gpeStream(std::uint32_t g) const
{
    SADAPT_ASSERT(g < gpeStreams.size(), "gpe index out of range");
    return gpeStreams[g];
}

const std::vector<TraceOp> &
Trace::lcpStream(std::uint32_t t) const
{
    SADAPT_ASSERT(t < lcpStreams.size(), "tile index out of range");
    return lcpStreams[t];
}

double
Trace::totalFlops() const
{
    double flops = 0.0;
    for (const auto &s : gpeStreams)
        for (const auto &op : s)
            flops += isFpKind(op.kind);
    return flops;
}

std::uint64_t
Trace::totalOps() const
{
    std::uint64_t n = 0;
    for (const auto &s : gpeStreams)
        n += s.size();
    for (const auto &s : lcpStreams)
        n += s.size();
    return n;
}

void
Trace::append(const Trace &other)
{
    SADAPT_ASSERT(shapeV == other.shapeV,
                  "cannot append traces of different shapes");
    const Addr phase_base = phases.size();
    for (const auto &name : other.phases)
        phases.push_back(name);
    auto fixup = [&](TraceOp op) {
        if (op.kind == OpKind::Phase)
            op.addr += phase_base;
        return op;
    };
    for (std::uint32_t g = 0; g < gpeStreams.size(); ++g)
        for (const auto &op : other.gpeStreams[g])
            gpeStreams[g].push_back(fixup(op));
    for (std::uint32_t t = 0; t < lcpStreams.size(); ++t)
        for (const auto &op : other.lcpStreams[t])
            lcpStreams[t].push_back(fixup(op));
}

} // namespace sadapt
