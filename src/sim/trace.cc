#include "sim/trace.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace sadapt {

Trace::Trace(SystemShape shape)
    : shapeV(shape),
      gpeStreams(shape.numGpes()),
      lcpStreams(shape.tiles)
{
}

void
Trace::beginPhase(const std::string &name)
{
    const Addr id = phases.size();
    phases.push_back(name);
    TraceOp marker{id, 0, OpKind::Phase};
    for (auto &s : gpeStreams)
        s.push_back(marker);
    for (auto &s : lcpStreams)
        s.push_back(marker);
}

void
Trace::registerPhase(std::string name)
{
    phases.push_back(std::move(name));
}

const std::vector<TraceOp> &
Trace::gpeStream(std::uint32_t g) const
{
    SADAPT_ASSERT(g < gpeStreams.size(), "gpe index out of range");
    return gpeStreams[g];
}

const std::vector<TraceOp> &
Trace::lcpStream(std::uint32_t t) const
{
    SADAPT_ASSERT(t < lcpStreams.size(), "tile index out of range");
    return lcpStreams[t];
}

double
Trace::totalFlops() const
{
    double flops = 0.0;
    for (const auto &s : gpeStreams)
        for (const auto &op : s)
            flops += isFpKind(op.kind);
    return flops;
}

std::uint64_t
Trace::totalOps() const
{
    std::uint64_t n = 0;
    for (const auto &s : gpeStreams)
        n += s.size();
    for (const auto &s : lcpStreams)
        n += s.size();
    return n;
}

Status
Trace::tryPushGpe(std::uint32_t gpe, TraceOp op)
{
    if (gpe >= gpeStreams.size())
        return Status::error(str("gpe id ", gpe, " out of range (",
                                 gpeStreams.size(), " GPEs)"));
    gpeStreams[gpe].push_back(op);
    return Status::ok();
}

Status
Trace::tryPushLcp(std::uint32_t tile, TraceOp op)
{
    if (tile >= lcpStreams.size())
        return Status::error(str("tile id ", tile, " out of range (",
                                 lcpStreams.size(), " tiles)"));
    lcpStreams[tile].push_back(op);
    return Status::ok();
}

void
Trace::append(const Trace &other)
{
    SADAPT_ASSERT(shapeV == other.shapeV,
                  "cannot append traces of different shapes");
    const Addr phase_base = phases.size();
    for (const auto &name : other.phases)
        phases.push_back(name);
    auto fixup = [&](TraceOp op) {
        if (op.kind == OpKind::Phase)
            op.addr += phase_base;
        return op;
    };
    for (std::uint32_t g = 0; g < gpeStreams.size(); ++g) {
        gpeStreams[g].reserve(gpeStreams[g].size() +
                              other.gpeStreams[g].size());
        for (const auto &op : other.gpeStreams[g])
            gpeStreams[g].push_back(fixup(op));
    }
    for (std::uint32_t t = 0; t < lcpStreams.size(); ++t) {
        lcpStreams[t].reserve(lcpStreams[t].size() +
                              other.lcpStreams[t].size());
        for (const auto &op : other.lcpStreams[t])
            lcpStreams[t].push_back(fixup(op));
    }
}

std::string
opKindName(OpKind k)
{
    switch (k) {
      case OpKind::IntOp: return "int";
      case OpKind::FpOp: return "fp";
      case OpKind::Load: return "ld";
      case OpKind::Store: return "st";
      case OpKind::FpLoad: return "fpld";
      case OpKind::FpStore: return "fpst";
      case OpKind::SpmLoad: return "spmld";
      case OpKind::SpmStore: return "spmst";
      case OpKind::Phase: return "phase";
    }
    panic("bad OpKind");
}

std::optional<OpKind>
opKindFromName(const std::string &name)
{
    if (name == "int") return OpKind::IntOp;
    if (name == "fp") return OpKind::FpOp;
    if (name == "ld") return OpKind::Load;
    if (name == "st") return OpKind::Store;
    if (name == "fpld") return OpKind::FpLoad;
    if (name == "fpst") return OpKind::FpStore;
    if (name == "spmld") return OpKind::SpmLoad;
    if (name == "spmst") return OpKind::SpmStore;
    if (name == "phase") return OpKind::Phase;
    return std::nullopt;
}

namespace {

Status
traceError(std::uint64_t line, const std::string &what)
{
    return Status::error(str("trace line ", line, ": ", what));
}

} // namespace

Result<TraceText>
readTraceText(std::istream &in)
{
    std::string line;
    std::uint64_t lineno = 0;
    auto next_line = [&]() -> bool {
        while (std::getline(in, line)) {
            ++lineno;
            const auto pos = line.find_first_not_of(" \t\r");
            if (pos == std::string::npos || line[pos] == '#')
                continue; // blank or comment
            return true;
        }
        return false;
    };

    if (!next_line() || line != "sadapt-trace v1")
        return Status::error(
            "trace: missing 'sadapt-trace v1' magic line");

    TraceText out;
    SystemShape shape;
    bool have_shape = false;
    std::uint64_t num_phases = 0;
    bool saw_end = false;
    std::vector<std::string> phase_names;
    // One flag per stream so duplicate declarations are caught.
    std::vector<bool> gpe_seen, lcp_seen;

    while (next_line()) {
        std::istringstream ls(line);
        std::string word;
        ls >> word;
        if (word == "end") {
            saw_end = true;
            break;
        }
        if (word == "shape") {
            if (have_shape)
                return traceError(lineno, "duplicate shape directive");
            std::uint64_t tiles = 0, gpes = 0;
            if (!(ls >> tiles >> gpes) || tiles == 0 || gpes == 0)
                return traceError(lineno, "malformed shape");
            if (tiles * gpes > maxTraceGpes)
                return traceError(
                    lineno, str("shape ", tiles, "x", gpes,
                                " exceeds ", maxTraceGpes, " GPEs"));
            shape.tiles = static_cast<std::uint32_t>(tiles);
            shape.gpesPerTile = static_cast<std::uint32_t>(gpes);
            out.trace = Trace(shape);
            gpe_seen.assign(shape.numGpes(), false);
            lcp_seen.assign(shape.tiles, false);
            have_shape = true;
            continue;
        }
        if (word == "footprint" || word == "epoch_fpops" ||
            word == "epochs") {
            std::uint64_t v = 0;
            if (!(ls >> v))
                return traceError(lineno, "malformed " + word);
            if (word == "footprint")
                out.footprint = v;
            else if (word == "epoch_fpops")
                out.epochFpOps = v;
            else
                out.declaredEpochs = v;
            continue;
        }
        if (word == "phase") {
            std::uint64_t id = 0;
            std::string name;
            if (!(ls >> id >> std::ws) || !std::getline(ls, name) ||
                name.empty())
                return traceError(lineno, "malformed phase");
            if (id != num_phases)
                return traceError(
                    lineno, str("phase id ", id, " out of order "
                                "(expected ", num_phases, ")"));
            ++num_phases;
            phase_names.push_back(std::move(name));
            continue;
        }
        if (word == "stream") {
            if (!have_shape)
                return traceError(lineno, "stream before shape");
            std::string core;
            std::uint64_t id = 0, nops = 0;
            if (!(ls >> core >> id >> nops) ||
                (core != "gpe" && core != "lcp"))
                return traceError(lineno, "malformed stream header");
            const bool is_gpe = core == "gpe";
            const std::uint64_t limit =
                is_gpe ? shape.numGpes() : shape.tiles;
            if (id >= limit)
                return traceError(
                    lineno, str(core, " id ", id, " out of range (",
                                limit, " ", core, "s)"));
            auto &seen = is_gpe ? gpe_seen : lcp_seen;
            if (seen[id])
                return traceError(
                    lineno, str("duplicate ", core, " stream ", id));
            seen[id] = true;

            std::int64_t last_t = -1;
            for (std::uint64_t i = 0; i < nops; ++i) {
                if (!next_line())
                    return traceError(
                        lineno, str("truncated ", core, " stream ",
                                    id, ": ", i, " of ", nops,
                                    " ops"));
                std::istringstream os(line);
                std::int64_t t = 0;
                std::string kind;
                std::uint64_t addr = 0, pc = 0;
                if (!(os >> t >> kind >> addr >> pc))
                    return traceError(lineno, "malformed op record");
                if (pc > 0xffff)
                    return traceError(
                        lineno, str("pc ", pc, " exceeds the 16-bit "
                                    "access-site id space"));
                if (t <= last_t)
                    return traceError(
                        lineno, str("non-monotone timestamp ", t,
                                    " (previous ", last_t, ")"));
                last_t = t;
                const auto k = opKindFromName(kind);
                if (!k)
                    return traceError(lineno,
                                      "unknown op kind '" + kind +
                                          "'");
                if (*k == OpKind::Phase && addr >= num_phases)
                    return traceError(
                        lineno, str("phase op references undeclared "
                                    "phase id ", addr));
                TraceOp op{addr, static_cast<std::uint16_t>(pc), *k};
                const Status s = is_gpe
                    ? out.trace.tryPushGpe(
                          static_cast<std::uint32_t>(id), op)
                    : out.trace.tryPushLcp(
                          static_cast<std::uint32_t>(id), op);
                if (!s)
                    return traceError(lineno, s.message());
            }
            continue;
        }
        return traceError(lineno, "unknown directive '" + word + "'");
    }

    if (!have_shape)
        return Status::error("trace: missing shape directive");
    if (!saw_end)
        return Status::error("trace: missing 'end' terminator");
    // Register the declared phases so phaseNames() lines up. The
    // phase markers themselves were replayed verbatim above.
    for (auto &name : phase_names)
        out.trace.registerPhase(std::move(name));
    return out;
}

Result<TraceText>
readTraceTextFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Status::error("cannot open trace file: " + path);
    return readTraceText(in);
}

void
writeTraceText(const Trace &trace, std::ostream &out,
               std::uint64_t footprint, std::uint64_t epoch_fpops,
               std::uint64_t declared_epochs)
{
    const SystemShape &shape = trace.shape();
    out << "sadapt-trace v1\n";
    out << "shape " << shape.tiles << ' ' << shape.gpesPerTile
        << '\n';
    if (footprint)
        out << "footprint " << footprint << '\n';
    if (epoch_fpops)
        out << "epoch_fpops " << epoch_fpops << '\n';
    if (declared_epochs)
        out << "epochs " << declared_epochs << '\n';
    const auto &phases = trace.phaseNames();
    for (std::size_t i = 0; i < phases.size(); ++i)
        out << "phase " << i << ' ' << phases[i] << '\n';
    auto emit = [&](const char *core, std::uint32_t id,
                    const std::vector<TraceOp> &ops) {
        out << "stream " << core << ' ' << id << ' ' << ops.size()
            << '\n';
        for (std::size_t i = 0; i < ops.size(); ++i)
            out << i << ' ' << opKindName(ops[i].kind) << ' '
                << ops[i].addr << ' ' << ops[i].pc << '\n';
    };
    for (std::uint32_t g = 0; g < shape.numGpes(); ++g)
        emit("gpe", g, trace.gpeStream(g));
    for (std::uint32_t t = 0; t < shape.tiles; ++t)
        emit("lcp", t, trace.lcpStream(t));
    out << "end\n";
}

} // namespace sadapt
