#include "sim/reconfig.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sadapt {

HwConfig
partialReconfig(const HwConfig &from, const HwConfig &to,
                std::uint32_t missed_mask)
{
    HwConfig out = to;
    const auto &params = allParams();
    for (std::size_t i = 0; i < params.size(); ++i) {
        if (missed_mask & (1u << i))
            out = withParam(out, params[i],
                            paramValue(from, params[i]));
    }
    return out;
}

ReconfigCostModel::ReconfigCostModel(SystemShape shape,
                                     double mem_bandwidth,
                                     const EnergyParams &energy)
    : shapeV(shape), memBw(mem_bandwidth), ep(energy), sram(energy)
{
    SADAPT_ASSERT(memBw > 0.0, "bandwidth must be positive");
}

bool
ReconfigCostModel::needsL1Flush(const HwConfig &from, const HwConfig &to)
{
    if (from.l1Type == MemType::Spm)
        return false; // SPM contents are software-managed; cap is fixed
    return from.l1Sharing != to.l1Sharing ||
        to.l1CapIdx < from.l1CapIdx;
}

bool
ReconfigCostModel::needsL2Flush(const HwConfig &from, const HwConfig &to)
{
    return from.l2Sharing != to.l2Sharing ||
        to.l2CapIdx < from.l2CapIdx;
}

Hertz
ReconfigCostModel::flushClock(const HwConfig &from,
                              bool energy_efficient_mode) const
{
    // The host's lookup table is indexed by (mode, L1 cap, L2 cap). The
    // flush is bandwidth-bound, so Energy-Efficient mode drains at a low
    // clock (bigger caches take longer, so the clock rises with
    // capacity to bound the fixed-overhead portion), and
    // Power-Performance mode always drains at the nominal clock.
    if (!energy_efficient_mode)
        return 1e9;
    const std::uint32_t cap_idx =
        std::max(from.l1CapIdx, from.l2CapIdx);
    static constexpr Hertz table[5] = {125e6, 125e6, 250e6, 250e6,
                                       500e6};
    return table[std::min<std::uint32_t>(cap_idx, 4)];
}

ReconfigCost
ReconfigCostModel::cost(const HwConfig &from, const HwConfig &to,
                        bool energy_efficient_mode) const
{
    ReconfigCost rc;
    if (from == to)
        return rc;

    const Hertz fclk = flushClock(from, energy_efficient_mode);
    rc.seconds = hostOverhead;

    bool super_fine = false;
    for (Param p : allParams()) {
        if (paramValue(from, p) == paramValue(to, p))
            continue;
        switch (paramCostClass(p)) {
          case CostClass::SuperFine:
            super_fine = true;
            break;
          case CostClass::Fine:
            // Capacity increases are super-fine (Section 5.2): the
            // sub-banked implementation can grow without flushing.
            if (p == Param::L1Cap && to.l1CapIdx > from.l1CapIdx)
                super_fine = true;
            else if (p == Param::L2Cap && to.l2CapIdx > from.l2CapIdx)
                super_fine = true;
            break;
          case CostClass::Coarse:
            break;
        }
    }
    rc.flushL1 = needsL1Flush(from, to);
    rc.flushL2 = needsL2Flush(from, to);

    if (super_fine || rc.flushL1 || rc.flushL2)
        rc.seconds += superFineCycles / fclk;

    const std::uint32_t line = lineSize;
    // Leakage of the memory arrays stays on while flushing; everything
    // else (cores, ICaches, queues, sync SPM) is power-gated.
    const bool spm = from.l1Type == MemType::Spm;
    const Watts flush_leak =
        shapeV.numGpes() *
            sram.leakage(spm ? 4096 : from.l1CapBytes(), spm) +
        shapeV.tiles * sram.leakage(from.l2CapBytes(), false);

    if (rc.flushL1) {
        // Pessimistically all-dirty L1 drains to L2; the volume beyond
        // the L2 capacity spills to main memory at off-chip bandwidth.
        const double bytes =
            double(shapeV.numGpes()) * from.l1CapBytes();
        const double l2_total =
            double(shapeV.tiles) * from.l2CapBytes();
        const double spill = std::max(0.0, bytes - l2_total);
        const Seconds internal = bytes / (8.0 * fclk); // 8 B/cyc drain
        const Seconds external = spill / memBw;
        const Seconds t = std::max(internal, external);
        rc.seconds += t;
        rc.energy += bytes * (sram.readEnergy(from.l1CapBytes(), false) +
                              sram.writeEnergy(from.l2CapBytes(),
                                               false)) / line +
            spill * ep.dramPerByte + flush_leak * t;
    }
    if (rc.flushL2) {
        const double bytes = double(shapeV.tiles) * from.l2CapBytes();
        const Seconds t = bytes / memBw;
        rc.seconds += t;
        rc.energy +=
            bytes * sram.readEnergy(from.l2CapBytes(), false) / line +
            bytes * ep.dramPerByte + flush_leak * t;
    }
    return rc;
}

Seconds
ReconfigCostModel::dimensionCost(const HwConfig &from, Param p,
                                 std::uint32_t new_value,
                                 bool energy_efficient_mode) const
{
    return cost(from, withParam(from, p, new_value),
                energy_efficient_mode).seconds;
}

} // namespace sadapt
