/**
 * @file
 * Validator for observability event journals (obs/journal.hh).
 *
 * A journal is the audit trail other tooling (sadapt_report, bench
 * post-processing) trusts blindly, so this checker enforces what the
 * writer promises: parsable schema-v1 JSONL with contiguous sequence
 * numbers, epoch ids that are monotone within each control-loop
 * segment (a reset to 0 starts a new segment — one journal may hold
 * several loops, e.g. guarded + unguarded robust runs), known event
 * types, and reconfig/policy/prediction events that reference legal
 * configuration parameter values (re-using the sim/config machinery
 * that bounds the space).
 */

#ifndef SADAPT_ANALYSIS_JOURNAL_CHECK_HH
#define SADAPT_ANALYSIS_JOURNAL_CHECK_HH

#include <string>
#include <vector>

#include "analysis/finding.hh"
#include "obs/journal.hh"

namespace sadapt::analysis {

/** Validate already-parsed journal events (name used in findings). */
Report checkJournalEvents(const std::vector<obs::JournalEvent> &events,
                          const std::string &name);

/** Read and validate a journal file. */
Report checkJournalFile(const std::string &path);

} // namespace sadapt::analysis

#endif // SADAPT_ANALYSIS_JOURNAL_CHECK_HH
