/**
 * @file
 * Findings infrastructure of the sadapt-check static analysis suite.
 *
 * Every checker (model verifier, trace/config validator, source lint)
 * reports Finding records keyed by check id and file:line, collected
 * into a Report. A baseline file suppresses known, accepted findings
 * so the suite can gate PRs on *new* violations only.
 */

#ifndef SADAPT_ANALYSIS_FINDING_HH
#define SADAPT_ANALYSIS_FINDING_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.hh"

namespace sadapt::analysis {

/** How bad a finding is; Error findings fail the check run. */
enum class Severity : std::uint8_t
{
    Warning, //!< suspicious but not certainly wrong (dead subtree)
    Error,   //!< violates a machine-checkable invariant
};

/** Human-readable severity name. */
std::string severityName(Severity s);

/** One baseline-file suppression entry with its file line number. */
struct BaselineEntry
{
    std::string key;        //!< "check-id file:line"
    std::uint64_t line = 0; //!< 1-based line in the baseline file
};

/** One diagnostic produced by a checker. */
struct Finding
{
    std::string checkId; //!< e.g. "model-threshold-domain"
    std::string file;    //!< artifact or source path (may be "<input>")
    std::uint64_t line = 0; //!< 1-based; 0 when not line-addressable
    Severity severity = Severity::Error;
    std::string message;
    /**
     * Source→sink call chain for taint findings ("nowNs" →
     * "recordEpoch" → "RunObserver::emit"); empty for plain lint
     * findings. Not part of key(), so baselining a taint finding
     * survives chain wording changes.
     */
    std::vector<std::string> chain;

    /** "file:line: [severity] check-id: message[; chain: a -> b]". */
    std::string format() const;

    /** The baseline key: "check-id file:line". */
    std::string key() const;
};

/**
 * A collection of findings with baseline suppression and summary
 * formatting. Checkers append; the CLI prints and derives the exit
 * code from errorCount().
 */
class Report
{
  public:
    void
    add(Finding f)
    {
        findingsV.push_back(std::move(f));
    }

    /** Convenience: construct-and-add. */
    void add(std::string check_id, std::string file,
             std::uint64_t line, Severity severity,
             std::string message);

    const std::vector<Finding> &findings() const { return findingsV; }

    std::size_t errorCount() const;
    std::size_t warningCount() const;
    std::size_t suppressedCount() const { return suppressedV; }

    bool
    clean() const
    {
        return errorCount() == 0;
    }

    /**
     * Drop findings whose key() appears in the baseline; remembers
     * how many were suppressed for the summary line.
     */
    void applyBaseline(const std::vector<std::string> &baseline_keys);

    /**
     * Baseline suppression with stale-entry detection: entries that
     * matched no finding are returned so the caller can turn them
     * into errors (a stale baseline hides future regressions behind
     * dead suppressions).
     */
    std::vector<BaselineEntry>
    applyBaseline(const std::vector<BaselineEntry> &entries);

    /** Sort by (file, line, checkId) for stable output. */
    void sort();

    /** Merge another report's findings (and suppressed count). */
    void merge(Report other);

    /** Print all findings plus a one-line summary. */
    void print(std::ostream &out) const;

    /**
     * Machine-readable dump: one JSON object with summary counts and
     * a findings array (rule, file, line, severity, message, chain).
     * Key order and formatting are fixed so output is byte-stable
     * and golden-file testable.
     */
    void printJson(std::ostream &out) const;

  private:
    std::vector<Finding> findingsV;
    std::size_t suppressedV = 0;
};

/**
 * Load a baseline-suppression file: one key() per line, '#' comments
 * and blank lines ignored. A missing file is a recoverable error.
 */
[[nodiscard]] Result<std::vector<std::string>>
loadBaseline(const std::string &path);

/** loadBaseline(), keeping each entry's baseline-file line number. */
[[nodiscard]] Result<std::vector<BaselineEntry>>
loadBaselineEntries(const std::string &path);

} // namespace sadapt::analysis

#endif // SADAPT_ANALYSIS_FINDING_HH
