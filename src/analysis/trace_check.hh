/**
 * @file
 * Static validator for operation trace files.
 *
 * The text trace parser (sim/trace) already rejects syntactically
 * broken files — bad headers, unknown kinds, out-of-range core ids,
 * non-monotone timestamps. This checker layers the semantic
 * invariants the timing engine assumes on top:
 *
 *  - memory-op addresses inside the declared address-space footprint
 *  - scratchpad-op addresses inside one SPM bank
 *  - the same explicit-phase barrier sequence on every core (the
 *    replay engine deadlocks or misbarriers otherwise)
 *  - the declared epoch count consistent with the trace's FP-op
 *    total and the declared FP-op epoch length (Section 4 epochs)
 *
 * Both trace formats are accepted: the format is sniffed from the
 * file magic. Columnar files get their framing validated first
 * (magic, version, per-section CRCs, torn tails, column-length
 * agreement — everything the mmap loader enforces), then the same
 * semantic checks as text run over the decoded streams.
 */

#ifndef SADAPT_ANALYSIS_TRACE_CHECK_HH
#define SADAPT_ANALYSIS_TRACE_CHECK_HH

#include <string>

#include "analysis/finding.hh"
#include "sim/trace.hh"

namespace sadapt::analysis {

/** Semantic checks on a parsed trace; `name` labels findings. */
Report checkTrace(const TraceText &tt, const std::string &name);

/** Parse + validate a trace file; parse errors become findings. */
Report checkTraceFile(const std::string &path);

} // namespace sadapt::analysis

#endif // SADAPT_ANALYSIS_TRACE_CHECK_HH
