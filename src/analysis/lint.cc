#include "analysis/lint.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/lexer.hh"
#include "common/logging.hh"

namespace sadapt::analysis {

namespace {

/**
 * Functions whose Status/Result return value must never be discarded.
 * Qualified entries ("FaultSpec::parse") match only when preceded by
 * the qualifier; bare entries match the identifier anywhere.
 */
const std::vector<std::string> &
statusRegistry()
{
    static const std::vector<std::string> names = {
        "parseConfig",
        "tryReadMatrixMarket",
        "tryReadMatrixMarketFile",
        "readTraceText",
        "readTraceTextFile",
        "readTraceColumnarFile",
        "writeTraceColumnarFile",
        "tryPushGpe",
        "tryPushLcp",
        "loadBaseline",
        "FaultSpec::parse",
    };
    return names;
}

/** True when path (already '/'-normalized) is under a directory. */
bool
underDir(const std::string &rel_path, const std::string &dir)
{
    return rel_path.rfind(dir + "/", 0) == 0 ||
        rel_path.find("/" + dir + "/") != std::string::npos;
}

} // namespace

Report
lintSource(const std::string &source, const std::string &rel_path)
{
    Report report;
    const std::vector<Token> toks = lex(source);
    const bool float_eq_scope =
        underDir(rel_path, "sim") || underDir(rel_path, "adapt");
    // common/threading.{hh,cc} is the one home allowed to touch raw
    // std::thread; everything else goes through its pool.
    const bool threading_home =
        rel_path.find("common/threading") != std::string::npos;
    // store/record_log.{hh,cc} is the one home allowed to touch raw
    // file streams; the rest of store/ goes through RecordLog's
    // framed, CRC-guarded appends.
    const bool store_raw_io_scope = underDir(rel_path, "store") &&
        rel_path.find("store/record_log") == std::string::npos;
    // src/fabric is the one home allowed to fork/exec/signal/reap;
    // everywhere else process control is banned outright.
    const bool fabric_home = underDir(rel_path, "fabric");
    // sim/trace_columnar.{hh,cc} is the one home allowed to mmap and
    // touch raw file descriptors (the zero-copy trace loader); the
    // same single-owner discipline store/record_log applies to raw
    // streams.
    const bool trace_mmap_home =
        rel_path.find("sim/trace_columnar") != std::string::npos;

    auto tok = [&](std::size_t i) -> const Token * {
        return i < toks.size() ? &toks[i] : nullptr;
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];

        // lint-banned-call: rand/srand/time used as a free function.
        if (t.kind == Token::Kind::Ident &&
            (t.text == "rand" || t.text == "srand" ||
             t.text == "time")) {
            const Token *next = tok(i + 1);
            const Token *prev = i > 0 ? &toks[i - 1] : nullptr;
            // Exclude member calls (x.time()) and class-qualified
            // statics; std:: and global :: still count as banned.
            bool member = prev != nullptr &&
                (prev->text == "." || prev->text == "->");
            if (prev != nullptr && prev->text == "::" && i >= 2 &&
                toks[i - 2].kind == Token::Kind::Ident &&
                toks[i - 2].text != "std")
                member = true;
            if (next && next->text == "(" && !member) {
                report.add(
                    "lint-banned-call", rel_path, t.line,
                    Severity::Error,
                    str("call to ", t.text, "(): use common/rng for "
                        "randomness and simulated clocks for time"));
            }
        }

        // lint-naked-thread: raw thread spawning (or detaching)
        // outside common/threading, which owns every worker thread.
        if (!threading_home && t.kind == Token::Kind::Ident &&
            t.text == "std") {
            const Token *colons = tok(i + 1);
            const Token *name = tok(i + 2);
            if (colons && colons->text == "::" && name &&
                name->kind == Token::Kind::Ident &&
                (name->text == "thread" || name->text == "jthread" ||
                 name->text == "async")) {
                report.add(
                    "lint-naked-thread", rel_path, name->line,
                    Severity::Error,
                    str("std::", name->text, ": spawn workers through "
                        "common/threading (ThreadPool/parallelFor)"));
            }
        }
        if (!threading_home && t.kind == Token::Kind::Punct &&
            (t.text == "." || t.text == "->")) {
            const Token *name = tok(i + 1);
            const Token *paren = tok(i + 2);
            if (name && name->kind == Token::Kind::Ident &&
                name->text == "detach" && paren &&
                paren->text == "(") {
                report.add(
                    "lint-naked-thread", rel_path, name->line,
                    Severity::Error,
                    "detach(): detached threads escape the pool's "
                    "drain-on-destroy guarantee; join via "
                    "common/threading instead");
            }
        }

        // lint-store-raw-io: raw file I/O in store/ outside the
        // framed-record writer.
        if (store_raw_io_scope && t.kind == Token::Kind::Ident &&
            (t.text == "fopen" || t.text == "fwrite" ||
             t.text == "fread" || t.text == "fprintf" ||
             t.text == "fputs" || t.text == "FILE" ||
             t.text == "ofstream" || t.text == "ifstream" ||
             t.text == "fstream" || t.text == "filebuf")) {
            report.add(
                "lint-store-raw-io", rel_path, t.line, Severity::Error,
                str(t.text, ": store files are written only through "
                            "store/record_log's framed CRC records"));
        }

        // lint-fabric-process: process control outside src/fabric,
        // the one home allowed to fork, signal and reap. Anywhere
        // else a stray fork duplicates open record-log buffers and a
        // stray kill/waitpid races the fabric coordinator's
        // bookkeeping.
        if (!fabric_home && t.kind == Token::Kind::Ident &&
            (t.text == "fork" || t.text == "vfork" ||
             t.text == "execv" || t.text == "execve" ||
             t.text == "execvp" || t.text == "execl" ||
             t.text == "execlp" || t.text == "execle" ||
             t.text == "kill" || t.text == "waitpid" ||
             t.text == "posix_spawn")) {
            const Token *next = tok(i + 1);
            const Token *prev = i > 0 ? &toks[i - 1] : nullptr;
            // Member calls (task.kill()) and class-qualified statics
            // are fine; bare and ::-qualified calls are not.
            bool member = prev != nullptr &&
                (prev->text == "." || prev->text == "->");
            if (prev != nullptr && prev->text == "::" && i >= 2 &&
                toks[i - 2].kind == Token::Kind::Ident)
                member = true;
            if (next && next->text == "(" && !member) {
                report.add(
                    "lint-fabric-process", rel_path, t.line,
                    Severity::Error,
                    str("call to ", t.text, "(): process control "
                        "(fork/exec/kill/wait) lives only in "
                        "src/fabric's sweep fabric"));
            }
        }

        // lint-trace-raw-mmap: memory mapping and raw-descriptor
        // I/O outside the columnar trace loader. A stray mmap
        // elsewhere creates a second lifetime authority for mapped
        // bytes; TraceView validity depends on exactly one.
        if (!trace_mmap_home && t.kind == Token::Kind::Ident &&
            (t.text == "mmap" || t.text == "munmap" ||
             t.text == "madvise" || t.text == "mremap" ||
             t.text == "pread" || t.text == "pwrite")) {
            const Token *next = tok(i + 1);
            const Token *prev = i > 0 ? &toks[i - 1] : nullptr;
            // Member calls (m.mmap()) and class-qualified statics
            // are fine; bare and ::-qualified calls are not.
            bool member = prev != nullptr &&
                (prev->text == "." || prev->text == "->");
            if (prev != nullptr && prev->text == "::" && i >= 2 &&
                toks[i - 2].kind == Token::Kind::Ident)
                member = true;
            if (next && next->text == "(" && !member) {
                report.add(
                    "lint-trace-raw-mmap", rel_path, t.line,
                    Severity::Error,
                    str("call to ", t.text, "(): memory mapping and "
                        "raw-descriptor I/O live only in "
                        "sim/trace_columnar's mmap loader"));
            }
        }

        // lint-naked-new: any new-expression.
        if (t.kind == Token::Kind::Ident && t.text == "new") {
            const Token *next = tok(i + 1);
            if (next &&
                (next->kind == Token::Kind::Ident ||
                 next->text == "(")) {
                report.add("lint-naked-new", rel_path, t.line,
                           Severity::Error,
                           "naked new-expression: use containers or "
                           "std::make_unique");
            }
        }

        // lint-float-eq: ==/!= with a float-literal operand.
        if (float_eq_scope && t.kind == Token::Kind::Punct &&
            (t.text == "==" || t.text == "!=")) {
            const Token *prev = i > 0 ? &toks[i - 1] : nullptr;
            const Token *next = tok(i + 1);
            const bool prev_float = prev &&
                prev->kind == Token::Kind::Number &&
                isFloatLiteral(prev->text);
            const bool next_float = next &&
                next->kind == Token::Kind::Number &&
                isFloatLiteral(next->text);
            if (prev_float || next_float) {
                report.add(
                    "lint-float-eq", rel_path, t.line, Severity::Error,
                    str("exact floating-point ", t.text,
                        " comparison: compare against a tolerance "
                        "or restructure"));
            }
        }

        // lint-unchecked-status: registry call as a bare
        // expression statement.
        if (t.kind == Token::Kind::Ident) {
            bool matches = false;
            std::size_t call_start = i; // first token of the call
            for (const std::string &entry : statusRegistry()) {
                const auto sep = entry.find("::");
                if (sep == std::string::npos) {
                    matches = t.text == entry;
                } else if (t.text == entry.substr(sep + 2) && i >= 2 &&
                           toks[i - 1].text == "::" &&
                           toks[i - 2].text == entry.substr(0, sep)) {
                    matches = true;
                    call_start = i - 2;
                }
                if (matches)
                    break;
            }
            const Token *next = tok(i + 1);
            if (matches && next && next->text == "(") {
                // Statement start: preceded by ; { } or nothing.
                const Token *before = call_start > 0
                    ? &toks[call_start - 1]
                    : nullptr;
                const bool stmt_start = before == nullptr ||
                    before->text == ";" || before->text == "{" ||
                    before->text == "}";
                if (stmt_start) {
                    // Find the matching ')' and check for ';'.
                    std::size_t depth = 0;
                    std::size_t j = i + 1;
                    for (; j < toks.size(); ++j) {
                        if (toks[j].text == "(")
                            ++depth;
                        else if (toks[j].text == ")" && --depth == 0)
                            break;
                    }
                    const Token *after = tok(j + 1);
                    if (after && after->text == ";") {
                        report.add(
                            "lint-unchecked-status", rel_path, t.line,
                            Severity::Error,
                            str("discarded Status/Result of ", t.text,
                                "(): check isOk() or propagate"));
                    }
                }
            }
        }
    }
    report.sort();
    return report;
}

Report
lintFile(const std::string &path, const std::string &root)
{
    std::ifstream in(path);
    if (!in) {
        Report report;
        report.add("lint-io", path, 0, Severity::Error,
                   "cannot open source file");
        return report;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string rel = path;
    const std::string prefix = root.empty() || root == "."
        ? std::string()
        : (root.back() == '/' ? root : root + "/");
    if (!prefix.empty() && rel.rfind(prefix, 0) == 0)
        rel = rel.substr(prefix.size());
    return lintSource(buf.str(), rel);
}

Report
lintTree(const std::string &dir, const std::string &root)
{
    namespace fs = std::filesystem;
    Report report;
    std::error_code ec;
    std::vector<std::string> files;
    for (fs::recursive_directory_iterator it(dir, ec), end;
         it != end && !ec; it.increment(ec)) {
        if (!it->is_regular_file())
            continue;
        const std::string ext = it->path().extension().string();
        if (ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
            ext == ".h")
            files.push_back(it->path().string());
    }
    if (ec) {
        report.add("lint-io", dir, 0, Severity::Error,
                   "cannot walk directory: " + ec.message());
        return report;
    }
    std::sort(files.begin(), files.end());
    for (const std::string &f : files)
        report.merge(lintFile(f, root));
    return report;
}

} // namespace sadapt::analysis
