#include "analysis/lexer.hh"

#include <cctype>
#include <unordered_set>

namespace sadapt::analysis {

namespace {

/** Multi-char punctuators the checks care about; rest lex per-char. */
bool
isPunctPair(char a, char b)
{
    static const std::unordered_set<std::string> pairs = {
        "==", "!=", "<=", ">=", "->", "::", "&&", "||", "<<", ">>",
        "+=", "-=", "*=", "/=", "++", "--",
    };
    return pairs.contains(std::string{a, b});
}

/** Encoding prefixes that glue to a following string/char literal. */
bool
isEncodingPrefix(const std::string &ident)
{
    return ident == "u8" || ident == "u" || ident == "U" ||
        ident == "L";
}

/** Raw-string prefixes: R plus every encoding-prefixed form. */
bool
isRawPrefix(const std::string &ident)
{
    return ident == "R" || ident == "u8R" || ident == "uR" ||
        ident == "UR" || ident == "LR";
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

} // namespace

std::vector<Token>
lex(const std::string &src)
{
    // Phase 2 first: delete backslash-newline splices while keeping a
    // per-character map back to the original source line, so spliced
    // identifiers lex as one token yet findings still point at real
    // lines.
    std::string cooked;
    std::vector<std::uint64_t> lineOf;
    std::vector<std::uint64_t> logLineOf;
    cooked.reserve(src.size());
    lineOf.reserve(src.size());
    logLineOf.reserve(src.size());
    {
        std::uint64_t line = 1;
        std::uint64_t logLine = 1;
        std::size_t i = 0;
        while (i < src.size()) {
            if (src[i] == '\\' && i + 1 < src.size() &&
                src[i + 1] == '\n') {
                i += 2;
                ++line;
                continue;
            }
            if (src[i] == '\\' && i + 2 < src.size() &&
                src[i + 1] == '\r' && src[i + 2] == '\n') {
                i += 3;
                ++line;
                continue;
            }
            cooked.push_back(src[i]);
            lineOf.push_back(line);
            logLineOf.push_back(logLine);
            if (src[i] == '\n') {
                ++line;
                ++logLine;
            }
            ++i;
        }
    }

    std::vector<Token> out;
    std::size_t i = 0;
    const std::size_t n = cooked.size();

    // Skip a (non-raw) quoted literal starting at the opening quote.
    auto skipQuoted = [&](char quote) {
        ++i; // opening quote
        while (i < n && cooked[i] != quote) {
            if (cooked[i] == '\\' && i + 1 < n)
                ++i;
            ++i;
        }
        if (i < n)
            ++i; // closing quote
        // A UDL suffix ("abc"_sv, 'c'_u) is part of the literal.
        if (i < n &&
            (cooked[i] == '_' ||
             std::isalpha(static_cast<unsigned char>(cooked[i]))))
            while (i < n && isIdentChar(cooked[i]))
                ++i;
    };

    // Skip a raw string literal starting at the '"' after the prefix.
    auto skipRaw = [&]() {
        std::size_t j = i + 1; // past '"'
        std::string delim;
        while (j < n && cooked[j] != '(')
            delim += cooked[j++];
        const std::string close = ")" + delim + "\"";
        std::size_t end = cooked.find(close, j);
        end = end == std::string::npos ? n : end + close.size();
        i = end;
        if (i < n &&
            (cooked[i] == '_' ||
             std::isalpha(static_cast<unsigned char>(cooked[i]))))
            while (i < n && isIdentChar(cooked[i]))
                ++i;
    };

    while (i < n) {
        const char c = cooked[i];
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '/' && i + 1 < n && cooked[i + 1] == '/') {
            // Splices are already deleted, so a spliced // comment
            // correctly swallows its continuation line here.
            while (i < n && cooked[i] != '\n')
                ++i;
            continue;
        }
        if (c == '/' && i + 1 < n && cooked[i + 1] == '*') {
            i += 2;
            while (i + 1 < n &&
                   !(cooked[i] == '*' && cooked[i + 1] == '/'))
                ++i;
            i = std::min(n, i + 2);
            continue;
        }
        if (c == '"' || c == '\'') {
            skipQuoted(c);
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t j = i;
            while (j < n && isIdentChar(cooked[j]))
                ++j;
            const std::string text = cooked.substr(i, j - i);
            const std::uint64_t line = lineOf[i];
            // An encoding or raw prefix glued to a quote is part of
            // the literal, not an identifier token.
            if (j < n && cooked[j] == '"' && isRawPrefix(text)) {
                i = j;
                skipRaw();
                continue;
            }
            if (j < n && (cooked[j] == '"' || cooked[j] == '\'') &&
                isEncodingPrefix(text)) {
                i = j;
                skipQuoted(cooked[j]);
                continue;
            }
            out.push_back(
                {Token::Kind::Ident, text, line, logLineOf[i]});
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(cooked[i + 1])))) {
            // pp-number: digits, identifier chars (hex digits, type
            // and UDL suffixes), '.', digit separators, and signs
            // directly after an e/E/p/P exponent.
            std::size_t j = i;
            while (j < n &&
                   (isIdentChar(cooked[j]) || cooked[j] == '.' ||
                    cooked[j] == '\'' ||
                    ((cooked[j] == '+' || cooked[j] == '-') && j > i &&
                     (cooked[j - 1] == 'e' || cooked[j - 1] == 'E' ||
                      cooked[j - 1] == 'p' || cooked[j - 1] == 'P'))))
                ++j;
            out.push_back(
                {Token::Kind::Number, cooked.substr(i, j - i),
                 lineOf[i], logLineOf[i]});
            i = j;
            continue;
        }
        if (i + 1 < n && isPunctPair(c, cooked[i + 1])) {
            out.push_back({Token::Kind::Punct, cooked.substr(i, 2),
                           lineOf[i], logLineOf[i]});
            i += 2;
            continue;
        }
        out.push_back({Token::Kind::Punct, std::string(1, c),
                       lineOf[i], logLineOf[i]});
        ++i;
    }
    return out;
}

bool
isFloatLiteral(const std::string &raw)
{
    // Strip a UDL suffix (12.5_km) before classifying; '_' cannot
    // otherwise appear in a pp-number.
    std::string text = raw.substr(0, raw.find('_'));
    if (text.empty())
        return false;
    if (text.size() > 1 && (text[1] == 'x' || text[1] == 'X')) {
        // Hex: floating only with a p-exponent (0x1.8p3).
        return text.find('p') != std::string::npos ||
            text.find('P') != std::string::npos;
    }
    if (text.back() == 'f' || text.back() == 'F' ||
        text.find('.') != std::string::npos)
        return true;
    return text.find('e') != std::string::npos ||
        text.find('E') != std::string::npos;
}

} // namespace sadapt::analysis
