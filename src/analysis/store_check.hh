/**
 * @file
 * Validator for persistent epoch-store files (store/epoch_store.hh).
 *
 * A store is consulted before re-simulating, so a damaged one must
 * fail loudly here rather than silently costing (or worse, serving)
 * anything at run time. The checker is strictly read-only — unlike
 * EpochStore::open() it never truncates a torn tail — and reports:
 *
 *   store-io         unreadable file
 *   store-magic      missing/foreign file header
 *   store-version    unsupported container or payload schema version
 *   store-crc        CRC-mismatch record frames (skipped at run time)
 *   store-torn-tail  incomplete bytes after the last intact frame
 *                    (warning: open() recovers this case by design)
 *   store-key        undecodable payloads or inconsistent keys
 *                    (epoch index out of range, epoch-count conflicts
 *                    between records of one result, duplicate cells)
 *   store-salt       records keyed by a different simulator salt
 *                    (warning: ignored at run time, compact() drops
 *                    them)
 */

#ifndef SADAPT_ANALYSIS_STORE_CHECK_HH
#define SADAPT_ANALYSIS_STORE_CHECK_HH

#include <string>

#include "analysis/finding.hh"

namespace sadapt::analysis {

/**
 * Read and validate a store file. Salt mismatches are only reported
 * when `expected_salt` is non-zero (the CLI usually cannot know the
 * salt of the build that will consume the store).
 */
Report checkStoreFile(const std::string &path,
                      std::uint64_t expected_salt = 0);

} // namespace sadapt::analysis

#endif // SADAPT_ANALYSIS_STORE_CHECK_HH
