#include "analysis/journal_check.hh"

#include <algorithm>
#include <optional>
#include <set>

#include "common/logging.hh"
#include "sim/config.hh"

namespace sadapt::analysis {

namespace {

/** Look up a Param by its journal slug (paramName()). */
std::optional<Param>
paramBySlug(const std::string &slug)
{
    for (Param p : allParams()) {
        if (paramName(p) == slug)
            return p;
    }
    return std::nullopt;
}

/** A config-spec field must parse back into a legal HwConfig. */
void
checkSpecField(Report &report, const obs::JournalEvent &ev,
               std::string_view key, const std::string &name)
{
    const auto spec = ev.strField(key);
    if (!spec) {
        report.add("journal-missing-field", name, ev.seq + 1,
                   Severity::Error,
                   "'" + ev.type + "' event lacks string field '" +
                       std::string(key) + "'");
        return;
    }
    const Result<HwConfig> cfg = parseConfig(*spec);
    if (!cfg.isOk()) {
        report.add("journal-bad-config", name, ev.seq + 1,
                   Severity::Error,
                   "'" + ev.type + "' event field '" +
                       std::string(key) +
                       "' is not a legal config spec: " +
                       cfg.message());
    }
}

void
checkPolicyEvent(Report &report, const obs::JournalEvent &ev,
                 const std::string &name)
{
    const auto slug = ev.strField("param");
    if (!slug) {
        report.add("journal-missing-field", name, ev.seq + 1,
                   Severity::Error,
                   "'policy' event lacks string field 'param'");
        return;
    }
    const auto p = paramBySlug(*slug);
    if (!p) {
        report.add("journal-bad-param", name, ev.seq + 1,
                   Severity::Error,
                   "'policy' event names unknown parameter '" + *slug +
                       "'");
        return;
    }
    const std::int64_t card = paramCardinality(*p);
    for (const char *key : {"from", "to"}) {
        const auto v = ev.intField(key);
        if (!v) {
            report.add("journal-missing-field", name, ev.seq + 1,
                       Severity::Error,
                       "'policy' event lacks integer field '" +
                           std::string(key) + "'");
        } else if (*v < 0 || *v >= card) {
            report.add("journal-bad-param-value", name, ev.seq + 1,
                       Severity::Error,
                       str("'policy' event value ", *v,
                           " out of range for parameter '", *slug,
                           "' (cardinality ", card, ")"));
        }
    }
}

void
checkPredictionEvent(Report &report, const obs::JournalEvent &ev,
                     const std::string &name)
{
    for (Param p : allParams()) {
        const auto v = ev.intField(paramName(p));
        if (!v)
            continue; // per-tree fields are optional
        const std::int64_t card = paramCardinality(p);
        if (*v < 0 || *v >= card) {
            report.add("journal-bad-param-value", name, ev.seq + 1,
                       Severity::Error,
                       str("'prediction' event value ", *v,
                           " out of range for parameter '",
                           paramName(p), "' (cardinality ", card,
                           ")"));
        }
    }
}

void
checkStoreEvent(Report &report, const obs::JournalEvent &ev,
                const std::string &name)
{
    const auto op = ev.strField("op");
    if (!op) {
        report.add("journal-missing-field", name, ev.seq + 1,
                   Severity::Error,
                   "'store' event lacks string field 'op'");
        return;
    }
    if (*op != "open" && *op != "flush") {
        report.add("journal-bad-store-op", name, ev.seq + 1,
                   Severity::Error,
                   "'store' event op '" + *op +
                       "' is neither 'open' nor 'flush'");
    }
    // Both ops carry cumulative non-negative tallies.
    for (const char *key : {"disk_records", "disk_results"}) {
        const auto v = ev.intField(key);
        if (v && *v < 0) {
            report.add("journal-bad-store-stat", name, ev.seq + 1,
                       Severity::Error,
                       str("'store' event field '", key,
                           "' is negative (", *v, ")"));
        }
    }
}

/**
 * Schema-v2 'session' lifecycle marker: op open|close|decision plus a
 * non-negative integer session id, with open/close strictly paired
 * (decisions only inside an open session, no double-open).
 */
void
checkSessionEvent(Report &report, const obs::JournalEvent &ev,
                  const std::string &name,
                  std::set<std::int64_t> &open_sessions)
{
    const auto op = ev.strField("op");
    if (!op) {
        report.add("journal-missing-field", name, ev.seq + 1,
                   Severity::Error,
                   "'session' event lacks string field 'op'");
        return;
    }
    if (*op != "open" && *op != "close" && *op != "decision") {
        report.add("journal-bad-session-op", name, ev.seq + 1,
                   Severity::Error,
                   "'session' event op '" + *op +
                       "' is not one of 'open', 'close', 'decision'");
        return;
    }
    const auto id = ev.intField("session");
    if (!id) {
        report.add("journal-missing-field", name, ev.seq + 1,
                   Severity::Error,
                   "'session' event lacks integer field 'session'");
        return;
    }
    if (*id < 0) {
        report.add("journal-bad-session-id", name, ev.seq + 1,
                   Severity::Error,
                   str("'session' event id ", *id, " is negative"));
        return;
    }
    if (*op == "open") {
        if (!open_sessions.insert(*id).second) {
            report.add("journal-session-reopen", name, ev.seq + 1,
                       Severity::Error,
                       str("session ", *id,
                           " opened while already open"));
        }
    } else {
        if (open_sessions.count(*id) == 0) {
            report.add("journal-session-unopened", name, ev.seq + 1,
                       Severity::Error,
                       str("'", *op, "' for session ", *id,
                           ", which is not open"));
        }
        if (*op == "close")
            open_sessions.erase(*id);
    }
}

} // namespace

Report
checkJournalEvents(const std::vector<obs::JournalEvent> &events,
                   const std::string &name)
{
    Report report;
    const std::vector<std::string> &types = obs::journalEventTypes();

    std::uint64_t expect_seq = 0;
    std::uint64_t last_epoch = 0;
    double segment_t = 0.0;
    bool first = true;
    std::set<std::int64_t> open_sessions;
    for (const obs::JournalEvent &ev : events) {
        if (ev.seq != expect_seq) {
            report.add("journal-seq-gap", name, ev.seq + 1,
                       Severity::Error,
                       str("sequence number ", ev.seq, " (expected ",
                           expect_seq, ")"));
            expect_seq = ev.seq; // resync to keep later checks useful
        }
        ++expect_seq;

        if (std::find(types.begin(), types.end(), ev.type) ==
            types.end()) {
            report.add("journal-unknown-type", name, ev.seq + 1,
                       Severity::Warning,
                       "unknown event type '" + ev.type + "'");
        }

        // Epoch ids are monotone within a control-loop segment; a
        // reset to 0 starts a new segment (one journal may hold
        // several loops). A serve-layer session open also brackets a
        // fresh per-tenant stream whose epoch ids and sim-time restart
        // at zero — even when the previous stream never left epoch 0.
        const bool session_open = ev.type == "session" &&
            ev.strField("op").value_or("") == "open";
        const bool new_segment = !first &&
            ((ev.epoch == 0 && last_epoch > 0) || session_open);
        if (new_segment)
            segment_t = 0.0;
        if (!first && !new_segment && ev.epoch < last_epoch) {
            report.add("journal-epoch-regression", name, ev.seq + 1,
                       Severity::Error,
                       str("epoch id ", ev.epoch,
                           " regresses below ", last_epoch,
                           " without a segment reset"));
        }
        if (ev.simTime < 0.0) {
            report.add("journal-negative-time", name, ev.seq + 1,
                       Severity::Error, "negative sim-time");
        } else if (!new_segment && ev.simTime + 1e-12 < segment_t) {
            report.add("journal-time-regression", name, ev.seq + 1,
                       Severity::Error,
                       str("sim-time ", ev.simTime,
                           " regresses below ", segment_t));
        }
        segment_t = std::max(segment_t, ev.simTime);
        last_epoch = ev.epoch;
        first = false;

        if (ev.type == "reconfig") {
            checkSpecField(report, ev, "from", name);
            checkSpecField(report, ev, "to", name);
        } else if (ev.type == "epoch") {
            checkSpecField(report, ev, "cfg", name);
        } else if (ev.type == "policy") {
            checkPolicyEvent(report, ev, name);
        } else if (ev.type == "prediction") {
            checkPredictionEvent(report, ev, name);
        } else if (ev.type == "store") {
            checkStoreEvent(report, ev, name);
        } else if (ev.type == "session") {
            checkSessionEvent(report, ev, name, open_sessions);
        }
    }
    // A live server's journal legitimately ends before its tenants
    // finish, so an unclosed session is a warning, not an error.
    for (const std::int64_t id : open_sessions) {
        report.add("journal-session-unclosed", name, events.size(),
                   Severity::Warning,
                   str("session ", id, " never closed"));
    }
    return report;
}

Report
checkJournalFile(const std::string &path)
{
    Report report;
    const Result<obs::JournalRead> read = obs::readJournalFile(path);
    if (!read.isOk()) {
        report.add("journal-parse", path, 0, Severity::Error,
                   read.message());
        return report;
    }
    if (read.value().truncated) {
        report.add("journal-truncated", path,
                   read.value().events.size() + 1, Severity::Warning,
                   "final line is a partial record (torn append); "
                   "events before it were recovered");
    }
    report.merge(checkJournalEvents(read.value().events, path));
    return report;
}

} // namespace sadapt::analysis
