/**
 * @file
 * The determinism-contract analyzer of the sadapt-check suite.
 *
 * DESIGN §9–§11 promise byte-identical sweep artifacts across --jobs
 * levels, kill-9 resume drills and warm/cold store runs. This checker
 * enforces the source-level half of that contract in two layers over
 * the symbol tables of analysis/symbols:
 *
 * 1. Symbol-aware lint rules (location-addressed, baselinable):
 *      lint-mutable-global  non-const static-storage state outside
 *                           whitelisted modules
 *      lint-unordered-iter  range-for over an unordered container
 *                           whose body writes a sink or accumulates
 *                           floats (iteration order is seed/ASLR
 *                           dependent)
 *      lint-pointer-order   ordering or keying by pointer value
 *      lint-wallclock       chrono/time reads outside the profiling
 *                           and lease-heartbeat allowances
 *      lint-serve-session-state  non-const static-storage state
 *                           anywhere under a serve/ component: the
 *                           multi-tenant server may share state
 *                           across sessions only via handles injected
 *                           through ServeOptions (DESIGN §15), so a
 *                           serve-layer global is a cross-session
 *                           leak, not merely a determinism risk
 *
 * 2. A cross-TU taint pass (det-taint-<kind>): nondeterminism
 *    sources (wall clock, raw randomness, thread ids, unordered
 *    iteration order, pointer order, mutable globals) are propagated
 *    callee→caller over the call graph until they meet a
 *    deterministic-output sink (journal emitters, EpochStore /
 *    RecordLog writers, metrics snapshots, BENCH json). Findings are
 *    reported at the junction function where a tainted input meets a
 *    sink on a *different* edge, with the full source→sink call
 *    chain attached (Finding::chain), so each flow is reported once
 *    rather than at every caller above it.
 *
 * Legitimate uses are not baselined away but carry scoped rule
 * allowances (determinismAllowances()) with one-line justifications;
 * an allowance both silences the lint finding and stops the taint
 * pass from seeding at that site.
 */

#ifndef SADAPT_ANALYSIS_DETERMINISM_CHECK_HH
#define SADAPT_ANALYSIS_DETERMINISM_CHECK_HH

#include <string>
#include <utility>
#include <vector>

#include "analysis/finding.hh"

namespace sadapt::analysis {

/**
 * A scoped permission for one rule in one module, with the reason it
 * is sound. Matching is by substring on the analyzer-relative path
 * ("obs/prof" covers both obs/prof.hh and obs/prof.cc).
 */
struct RuleAllowance
{
    std::string rule;       //!< "lint-wallclock", ...
    std::string pathPrefix; //!< e.g. "obs/prof"
    std::string why;        //!< one-line justification
};

/** The audited allowance table for the sadapt source tree. */
const std::vector<RuleAllowance> &determinismAllowances();

/**
 * Analyze a set of sources as one program. `files` holds
 * (analyzer-relative path, content) pairs; order does not matter
 * (TUs are sorted by path before linking so output is stable).
 */
Report checkDeterminism(
    const std::vector<std::pair<std::string, std::string>> &files);

/**
 * Walk source trees (.cc/.hh/.cpp/.h) and analyze them together.
 * Paths in findings are relative to `root` when under it.
 */
Report checkDeterminismTree(const std::vector<std::string> &dirs,
                            const std::string &root);

} // namespace sadapt::analysis

#endif // SADAPT_ANALYSIS_DETERMINISM_CHECK_HH
