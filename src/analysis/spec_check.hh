/**
 * @file
 * Validator for configuration and fault-injection spec strings.
 *
 * Spec strings reach the system from CLI flags, experiment scripts
 * and saved run manifests; a typo'd key silently falls back to an
 * error only at run time. This checker batch-validates spec-list
 * files ahead of time and additionally round-trips every spec
 * (parse -> serialize -> parse) so the parser and serializer cannot
 * drift apart. checkConfigSpaceInvariants() self-checks the dense
 * config encoding over the whole 1800-point space.
 */

#ifndef SADAPT_ANALYSIS_SPEC_CHECK_HH
#define SADAPT_ANALYSIS_SPEC_CHECK_HH

#include <string>

#include "analysis/finding.hh"

namespace sadapt::analysis {

/** Validate one "config: ..." spec (parse + round-trip). */
Report checkConfigSpec(const std::string &spec,
                       const std::string &name, std::uint64_t line);

/** Validate one "faults: ..." spec (parse + round-trip). */
Report checkFaultSpec(const std::string &spec, const std::string &name,
                      std::uint64_t line);

/**
 * Validate a spec-list file: one spec per line, prefixed "config:"
 * or "faults:"; '#' comments and blank lines are ignored.
 */
Report checkSpecFile(const std::string &path);

/**
 * Self-check the configuration space: encode/decode round-trips over
 * every configuration, preset parsability, and toSpec() inversion.
 */
Report checkConfigSpaceInvariants();

} // namespace sadapt::analysis

#endif // SADAPT_ANALYSIS_SPEC_CHECK_HH
