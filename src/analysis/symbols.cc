#include "analysis/symbols.hh"

#include <algorithm>
#include <optional>
#include <set>
#include <unordered_set>

#include "analysis/lexer.hh"
#include "common/logging.hh"

namespace sadapt::analysis {

namespace {

const std::unordered_set<std::string> &
keywords()
{
    static const std::unordered_set<std::string> kw = {
        "if",           "else",        "for",
        "while",        "do",          "switch",
        "case",         "default",     "return",
        "break",        "continue",    "goto",
        "sizeof",       "alignof",     "alignas",
        "decltype",     "noexcept",    "static_assert",
        "new",          "delete",      "throw",
        "try",          "catch",       "const_cast",
        "static_cast",  "dynamic_cast", "reinterpret_cast",
        "co_await",     "co_yield",    "co_return",
        "requires",     "concept",     "class",
        "struct",       "union",       "enum",
        "namespace",    "template",    "typename",
        "using",        "typedef",     "friend",
        "public",       "private",     "protected",
        "operator",     "this",        "nullptr",
        "true",         "false",       "auto",
        "void",         "bool",        "char",
        "short",        "int",         "long",
        "float",        "double",      "signed",
        "unsigned",     "const",       "constexpr",
        "consteval",    "constinit",   "volatile",
        "mutable",      "static",      "extern",
        "inline",       "virtual",     "explicit",
        "override",     "final",       "thread_local",
        "and",          "or",          "not",
        "defined",      "wchar_t",     "char8_t",
        "char16_t",     "char32_t",
    };
    return kw;
}

bool
isKeyword(const std::string &t)
{
    return keywords().contains(t);
}

bool
isUnorderedContainer(const std::string &t)
{
    return t == "unordered_map" || t == "unordered_set" ||
        t == "unordered_multimap" || t == "unordered_multiset";
}

bool
isOrderedAssoc(const std::string &t)
{
    return t == "map" || t == "set" || t == "multimap" ||
        t == "multiset";
}

bool
isClockName(const std::string &t)
{
    return t == "steady_clock" || t == "system_clock" ||
        t == "high_resolution_clock";
}

/** The per-TU scope/declaration parser. One instance per buffer. */
class TuParser
{
  public:
    TuParser(std::string source, std::string rel_path)
        : toks(lex(source)), out()
    {
        out.file = std::move(rel_path);
    }

    TuSymbols
    run()
    {
        std::size_t i = 0;
        while (i < toks.size())
            i = step(i);
        return std::move(out);
    }

  private:
    struct Frame
    {
        enum class Kind
        {
            Namespace,
            Class,
            Function,
            Block, //!< braces inside a function body
            Decl,  //!< declarative block at namespace scope
            Skip,  //!< enum bodies and other ignored regions
        };
        Kind kind = Kind::Block;
        std::string name;
        std::size_t func = SIZE_MAX; //!< FunctionDef index, if any
    };

    // ---- token helpers -------------------------------------------

    const Token *
    tok(std::size_t i) const
    {
        return i < toks.size() ? &toks[i] : nullptr;
    }

    bool
    is(std::size_t i, const char *text) const
    {
        return i < toks.size() && toks[i].text == text;
    }

    bool
    isIdent(std::size_t i) const
    {
        return i < toks.size() && toks[i].kind == Token::Kind::Ident;
    }

    /** Skip a balanced (...) / {...} / [...] group from its opener. */
    std::size_t
    skipGroup(std::size_t i) const
    {
        const std::string &open = toks[i].text;
        const std::string close =
            open == "(" ? ")" : (open == "{" ? "}" : "]");
        int depth = 0;
        for (; i < toks.size(); ++i) {
            if (toks[i].text == open)
                ++depth;
            else if (toks[i].text == close && --depth == 0)
                return i + 1;
        }
        return toks.size();
    }

    /**
     * Skip a balanced template-argument group from its '<'. The
     * lexer emits ">>" as one token, which closes two levels.
     * Returns the index just past the closing '>' — or `i + 1`
     * when no balanced close exists in the next few hundred tokens
     * (then it was a less-than, not a template bracket).
     */
    std::size_t
    skipAngles(std::size_t i) const
    {
        int depth = 0;
        const std::size_t limit =
            std::min(toks.size(), i + 512); // less-than heuristic cap
        for (std::size_t j = i; j < limit; ++j) {
            const std::string &t = toks[j].text;
            if (t == "<")
                ++depth;
            else if (t == ">") {
                if (--depth == 0)
                    return j + 1;
            } else if (t == ">>") {
                depth -= 2;
                if (depth <= 0)
                    return j + 1;
            } else if (t == ";" || t == "{" || t == "}")
                break; // statement ended: it was a comparison
        }
        return i + 1;
    }

    bool
    inFunction() const
    {
        return currentFunc() != SIZE_MAX;
    }

    std::size_t
    currentFunc() const
    {
        for (auto it = scopes.rbegin(); it != scopes.rend(); ++it)
            if (it->kind == Frame::Kind::Function)
                return it->func;
        return SIZE_MAX;
    }

    /** True when the innermost scope accepts declarations. */
    bool
    declarativeScope() const
    {
        if (scopes.empty())
            return true;
        switch (scopes.back().kind) {
          case Frame::Kind::Namespace:
          case Frame::Kind::Class:
          case Frame::Kind::Decl: return true;
          default: return false;
        }
    }

    bool
    classScope() const
    {
        return !scopes.empty() &&
            scopes.back().kind == Frame::Kind::Class;
    }

    /** Scope qualifier, e.g. "sadapt::obs::MetricRegistry". */
    std::string
    scopeQual() const
    {
        std::string q;
        for (const Frame &f : scopes) {
            if (f.kind != Frame::Kind::Namespace &&
                f.kind != Frame::Kind::Class)
                continue;
            if (f.name.empty())
                continue;
            if (!q.empty())
                q += "::";
            q += f.name;
        }
        return q;
    }

    // ---- main dispatch -------------------------------------------

    std::size_t
    step(std::size_t i)
    {
        const Token &t = toks[i];

        // Inside a Skip region, only track brace nesting.
        if (!scopes.empty() &&
            scopes.back().kind == Frame::Kind::Skip) {
            if (t.text == "{")
                scopes.push_back({Frame::Kind::Skip, "", SIZE_MAX});
            else if (t.text == "}")
                scopes.pop_back();
            return i + 1;
        }

        if (t.text == "{") {
            scopes.push_back(takePending());
            return i + 1;
        }
        if (t.text == "}") {
            if (!scopes.empty())
                scopes.pop_back();
            return i + 1;
        }
        if (t.text == "#")
            return skipDirective(i);
        if (t.kind == Token::Kind::Ident) {
            // Access specifiers must not start a declaration scan:
            // `private: struct X {` would otherwise swallow the
            // struct keyword and lose the Class frame.
            if ((t.text == "public" || t.text == "private" ||
                 t.text == "protected") &&
                is(i + 1, ":"))
                return i + 2;
            if (t.text == "template" && is(i + 1, "<"))
                return skipAngles(i + 1);
            if (t.text == "namespace")
                return parseNamespaceHead(i);
            if (t.text == "class" || t.text == "struct" ||
                t.text == "union")
                return parseClassHead(i);
            if (t.text == "enum")
                return parseEnumHead(i);
            if (t.text == "using" || t.text == "typedef")
                return skipStatement(i);
        }

        if (inFunction())
            return bodyToken(i);
        if (declarativeScope())
            return parseDeclaration(i);
        return i + 1;
    }

    Frame
    takePending()
    {
        Frame f = pending.value_or(
            Frame{inFunction() || !declarativeScope()
                      ? Frame::Kind::Block
                      : Frame::Kind::Decl,
                  "", SIZE_MAX});
        pending.reset();
        return f;
    }

    /** Skip one preprocessor directive (splice-aware). */
    std::size_t
    skipDirective(std::size_t i) const
    {
        const std::uint64_t logical = toks[i].logicalLine;
        while (i < toks.size() && toks[i].logicalLine == logical)
            ++i;
        return i;
    }

    /** Skip to just past the next top-level ';' (groups skipped). */
    std::size_t
    skipStatement(std::size_t i) const
    {
        while (i < toks.size()) {
            const std::string &t = toks[i].text;
            if (t == ";")
                return i + 1;
            if (t == "(" || t == "{" || t == "[") {
                i = skipGroup(i);
                continue;
            }
            if (t == "}")
                return i; // let the scope tracker see it
            ++i;
        }
        return i;
    }

    // ---- heads ----------------------------------------------------

    std::size_t
    parseNamespaceHead(std::size_t i)
    {
        // namespace A::B { ... } | namespace { | namespace X = ...;
        std::size_t j = i + 1;
        std::string name;
        while (isIdent(j) || is(j, "::")) {
            if (!name.empty() || toks[j].text == "::")
                name += toks[j].text;
            else
                name = toks[j].text;
            ++j;
        }
        if (is(j, "=")) // namespace alias
            return skipStatement(j);
        if (is(j, "{")) {
            pending = Frame{Frame::Kind::Namespace, name, SIZE_MAX};
            return j; // the '{' handler pushes it
        }
        return j;
    }

    std::size_t
    parseClassHead(std::size_t i)
    {
        // class [attrs] Name [final] [: bases] { ... } | fwd decl ';'
        // An elaborated-type use inside a function body ("struct tm
        // t;") lands here too: then no '{' follows before the ';'.
        std::size_t j = i + 1;
        std::string name;
        while (j < toks.size()) {
            const std::string &t = toks[j].text;
            if (t == "[") {
                j = skipGroup(j);
                continue;
            }
            if (toks[j].kind == Token::Kind::Ident && !isKeyword(t)) {
                name = t;
                ++j;
                continue;
            }
            if (t == "final" || t == "::") {
                ++j;
                continue;
            }
            if (t == "<") { // specialization args
                j = skipAngles(j);
                continue;
            }
            break;
        }
        if (is(j, ";"))
            return j + 1; // forward declaration
        if (is(j, ":")) { // base clause: scan to the body '{'
            ++j;
            while (j < toks.size() && !is(j, "{") && !is(j, ";")) {
                if (is(j, "<")) {
                    j = skipAngles(j);
                    continue;
                }
                ++j;
            }
        }
        if (is(j, "{")) {
            pending = Frame{Frame::Kind::Class, name, SIZE_MAX};
            return j;
        }
        return j; // `struct X x;`-style use: resume normal scanning
    }

    std::size_t
    parseEnumHead(std::size_t i)
    {
        std::size_t j = i + 1;
        while (j < toks.size() && !is(j, "{") && !is(j, ";"))
            ++j;
        if (is(j, "{")) {
            pending = Frame{Frame::Kind::Skip, "", SIZE_MAX};
            return j;
        }
        return j + 1;
    }

    // ---- declarations at namespace/class scope -------------------

    /**
     * Parse one statement at declarative scope: a function
     * definition (body scanned afterwards via the scope stack), a
     * function declaration (skipped), or a variable declaration
     * (recorded as a GlobalVar when it is static-storage mutable
     * state).
     */
    std::size_t
    parseDeclaration(std::size_t i)
    {
        // Find the first structural delimiter at top level.
        std::size_t j = i;
        std::size_t parenAt = SIZE_MAX;
        std::size_t eqAt = SIZE_MAX;
        while (j < toks.size()) {
            const std::string &t = toks[j].text;
            if (t == "(") {
                parenAt = j;
                break;
            }
            if (t == "=") {
                eqAt = j;
                break;
            }
            if (t == ";" || t == "{" || t == "}")
                break;
            if (t == "<") {
                j = skipAngles(j);
                continue;
            }
            if (t == "[") {
                j = skipGroup(j);
                continue;
            }
            if (t == "#")
                return skipDirective(j);
            ++j;
        }
        if (j >= toks.size())
            return toks.size();

        if (parenAt != SIZE_MAX)
            return parseFunctionHead(i, parenAt);
        if (eqAt != SIZE_MAX || is(j, ";"))
            return parseVariable(i, j, eqAt != SIZE_MAX);
        if (is(j, "{") || is(j, "}"))
            return j; // let the scope tracker handle the brace
        return j + 1;
    }

    /**
     * The declarator name directly before the parameter-list '(',
     * with its written qualifier ("A::B"). Handles operators,
     * destructors and constructors; empty name means "not a
     * function head".
     */
    std::size_t
    parseFunctionHead(std::size_t stmtBegin, std::size_t parenAt)
    {
        std::string name;
        std::string qual;
        std::uint64_t nameLine = toks[parenAt].line;

        std::size_t k = parenAt;
        if (k > stmtBegin && isIdent(k - 1) &&
            !isKeyword(toks[k - 1].text)) {
            name = toks[k - 1].text;
            nameLine = toks[k - 1].line;
            k -= 1;
            // ~Dtor
            if (k > stmtBegin && is(k - 1, "~"))
                k -= 1;
            // Written qualifier chain A::B::name
            while (k >= stmtBegin + 2 && is(k - 1, "::") &&
                   isIdent(k - 2)) {
                qual = qual.empty()
                    ? toks[k - 2].text
                    : toks[k - 2].text + "::" + qual;
                k -= 2;
            }
        } else {
            // operator==( ... ) / operator()( ... ) / operator bool(
            for (std::size_t b = parenAt;
                 b > stmtBegin && b + 3 > parenAt; --b) {
                if (isIdent(b - 1) && toks[b - 1].text == "operator") {
                    name = "operator";
                    nameLine = toks[b - 1].line;
                    break;
                }
            }
            if (name.empty())
                return parenAt + 1; // not a function head; move on
        }

        // `operator()` has its empty parens before the param list.
        std::size_t params = parenAt;
        if (name == "operator" && is(parenAt + 1, ")") &&
            is(parenAt + 2, "("))
            params = parenAt + 2;

        std::size_t j = skipGroup(params); // past ')'

        // Trailing part: const/noexcept/trailing-return/ctor-inits,
        // ending in '{' (definition), ';' (declaration) or '=' with
        // default/delete (no body).
        while (j < toks.size()) {
            const std::string &t = toks[j].text;
            if (t == ";")
                return j + 1; // declaration only
            if (t == "{")
                break; // definition body
            if (t == "=")
                return skipStatement(j); // = default / = delete / = 0
            if (t == ":") {              // ctor-init list
                j = skipCtorInits(j + 1);
                break;
            }
            if (t == "(" || t == "[") {
                j = skipGroup(j);
                continue;
            }
            if (t == "<") {
                j = skipAngles(j);
                continue;
            }
            if (t == "}")
                return j; // mismatched: bail to scope tracker
            ++j;
        }
        if (!is(j, "{"))
            return j;

        FunctionDef fn;
        fn.name = name;
        const std::string sq = scopeQual();
        fn.qualified = sq.empty() ? std::string() : sq + "::";
        if (!qual.empty())
            fn.qualified += qual + "::";
        fn.qualified += name;
        fn.file = out.file;
        fn.line = nameLine;
        out.functions.push_back(std::move(fn));
        const std::size_t fnIndex = out.functions.size() - 1;

        // Parameter declarations feed the body's variable tables.
        funcLocals = VarTables{};
        scanDecls(params + 1, skipGroup(params) - 1, funcLocals);

        pending = Frame{Frame::Kind::Function, name, fnIndex};
        return j; // the '{' handler pushes the function scope
    }

    /** Skip a constructor-initializer list; returns the body '{'. */
    std::size_t
    skipCtorInits(std::size_t j) const
    {
        while (j < toks.size()) {
            const std::string &t = toks[j].text;
            if (t == "(" || t == "[") {
                j = skipGroup(j);
                continue;
            }
            if (t == "<") {
                j = skipAngles(j);
                continue;
            }
            if (t == "{") {
                // Brace-init of a member, or the body? A body brace
                // follows either ')' / '}' of an init or the list
                // head; a member brace-init follows an identifier.
                if (j > 0 && isIdent(j - 1)) {
                    j = skipGroup(j);
                    continue;
                }
                return j;
            }
            if (t == ";" || t == "}")
                return j;
            ++j;
        }
        return j;
    }

    std::size_t
    parseVariable(std::size_t stmtBegin, std::size_t delim,
                  bool hasInit)
    {
        const std::size_t end =
            hasInit ? skipStatement(delim) : delim + 1;

        // Reject non-variable statements.
        bool sawStatic = false, sawConst = false, sawExtern = false;
        for (std::size_t k = stmtBegin; k < delim; ++k) {
            const std::string &t = toks[k].text;
            if (t == "static" || t == "thread_local")
                sawStatic = true;
            else if (t == "const" || t == "constexpr" ||
                     t == "constinit")
                sawConst = true;
            else if (t == "extern")
                sawExtern = true;
            else if (t == "friend" || t == "using" ||
                     t == "typedef" || t == "operator" ||
                     t == "return" || t == "requires" ||
                     t == "static_assert" || t == "throw")
                return end;
        }
        if (sawExtern && !hasInit)
            return end; // pure declaration; flag the definition

        // Declarator name: last identifier before the delimiter,
        // stepping back over array brackets.
        std::size_t k = delim;
        while (k > stmtBegin && (is(k - 1, "]") || is(k - 1, "[") ||
                                 toks[k - 1].kind ==
                                     Token::Kind::Number))
            --k;
        if (k == stmtBegin || !isIdent(k - 1) ||
            isKeyword(toks[k - 1].text))
            return end;
        const Token &nameTok = toks[k - 1];

        // Class-scope: only static data members are global state;
        // plain members are per-object.
        if (classScope() && !sawStatic)
            return end;

        GlobalVar g;
        g.name = nameTok.text;
        g.file = out.file;
        g.line = nameTok.line;
        g.isConst = sawConst;
        g.storage = classScope() ? "class-static" : "namespace-scope";
        out.globals.push_back(std::move(g));

        // The declared type may itself matter to the rules
        // (unordered containers, pointer-keyed maps).
        VarTables scratch;
        scanDecls(stmtBegin, delim, scratch);
        tuUnordered.insert(scratch.unordered.begin(),
                           scratch.unordered.end());
        return end;
    }

    // ---- variable-declaration facts ------------------------------

    struct VarTables
    {
        std::set<std::string> unordered; //!< unordered containers
        std::set<std::string> floats;    //!< float/double scalars
        std::set<std::string> pointers;  //!< pointer-typed names
    };

    /**
     * Scan [begin, end) for variable declarations the rules care
     * about, filling `tables`. Also records pointer-keyed
     * associative containers as pointer-order sites.
     */
    void
    scanDecls(std::size_t begin, std::size_t end, VarTables &tables)
    {
        for (std::size_t k = begin; k < end && k < toks.size(); ++k) {
            const Token &t = toks[k];
            if (t.kind != Token::Kind::Ident)
                continue;
            if (isUnorderedContainer(t.text) ||
                isOrderedAssoc(t.text)) {
                if (!is(k + 1, "<"))
                    continue;
                const bool unordered =
                    isUnorderedContainer(t.text);
                const bool ptrKey = pointerKeyed(k + 1);
                const std::size_t close = skipAngles(k + 1);
                if (ptrKey)
                    notePointerOrder(
                        t.line,
                        str(t.text, " keyed by pointer value "
                                    "(ASLR-dependent order)"));
                // Declared name: first identifier after the
                // template args, past cv/ref tokens.
                std::size_t v = close;
                while (v < end &&
                       (is(v, "&") || is(v, "*") ||
                        is(v, "const") || is(v, "...")))
                    ++v;
                if (unordered && v < end && isIdent(v) &&
                    !isKeyword(toks[v].text))
                    tables.unordered.insert(toks[v].text);
                k = close > k ? close - 1 : k;
                continue;
            }
            if (t.text == "double" || t.text == "float") {
                std::size_t v = k + 1;
                while (v < end && (is(v, "&") || is(v, "const")))
                    ++v;
                if (v < end && isIdent(v) &&
                    !isKeyword(toks[v].text))
                    tables.floats.insert(toks[v].text);
                continue;
            }
            // `T *name` followed by , ) ; = — a pointer variable.
            if (is(k + 1, "*")) {
                std::size_t v = k + 2;
                while (v < end && (is(v, "*") || is(v, "const")))
                    ++v;
                if (v < end && isIdent(v) &&
                    !isKeyword(toks[v].text) &&
                    (is(v + 1, ",") || is(v + 1, ")") ||
                     is(v + 1, ";") || is(v + 1, "=")))
                    tables.pointers.insert(toks[v].text);
            }
        }
        // `auto x = 0.0;` — a float accumulator in the making.
        for (std::size_t k = begin; k + 3 < end; ++k) {
            if (toks[k].text == "auto" && isIdent(k + 1) &&
                is(k + 2, "=") &&
                toks[k + 3].kind == Token::Kind::Number &&
                isFloatLiteral(toks[k + 3].text))
                tables.floats.insert(toks[k + 1].text);
        }
    }

    /** True when the template args from '<' key on a pointer type. */
    bool
    pointerKeyed(std::size_t angleAt) const
    {
        int depth = 0;
        for (std::size_t j = angleAt; j < toks.size(); ++j) {
            const std::string &t = toks[j].text;
            if (t == "<")
                ++depth;
            else if (t == ">" || t == ">>") {
                depth -= t == ">" ? 1 : 2;
                if (depth <= 0)
                    return false;
            } else if (t == "," && depth == 1)
                return false; // key type ended without '*'
            else if (t == "*" && depth == 1)
                return true;
            else if (t == ";" || t == "{")
                return false;
        }
        return false;
    }

    // ---- function bodies -----------------------------------------

    std::size_t
    bodyToken(std::size_t i)
    {
        const std::size_t fi = currentFunc();
        FunctionDef &fn = out.functions[fi];
        const Token &t = toks[i];

        if (t.text == "#")
            return skipDirective(i);

        // Local declarations feed the local variable tables.
        if (t.kind == Token::Kind::Ident &&
            (isUnorderedContainer(t.text) ||
             isOrderedAssoc(t.text) || t.text == "double" ||
             t.text == "float" || t.text == "auto" ||
             t.text == "hash")) {
            if (t.text == "hash" && is(i + 1, "<") &&
                pointerKeyed(i + 1))
                notePointerOrder(t.line,
                                 "std::hash over a pointer value "
                                 "(ASLR-dependent)");
            const std::size_t stmtEnd = statementEnd(i);
            scanDecls(i, stmtEnd, funcLocals);
            if (isUnorderedContainer(t.text) ||
                isOrderedAssoc(t.text))
                return is(i + 1, "<") ? skipAngles(i + 1) : i + 1;
            return i + 1;
        }

        // Function-local static state.
        if (t.text == "static" &&
            (i == 0 || is(i - 1, ";") || is(i - 1, "{") ||
             is(i - 1, "}"))) {
            return parseLocalStatic(i, fn);
        }

        // Lambda introducer: parse its parameters as locals.
        if (t.text == "[" && i > 0 &&
            (toks[i - 1].kind == Token::Kind::Punct &&
             toks[i - 1].text != "]" && toks[i - 1].text != ")")) {
            const std::size_t close = skipGroup(i);
            if (is(close, "("))
                scanDecls(close + 1, skipGroup(close) - 1,
                          funcLocals);
            return close;
        }

        // Range-for over an unordered container.
        if (t.text == "for" && is(i + 1, "("))
            return parseFor(i, fn);

        // Wall-clock reads.
        if (t.kind == Token::Kind::Ident && isClockName(t.text) &&
            is(i + 1, "::") && is(i + 2, "now")) {
            noteWallclock(fn, t.line, t.text + "::now()");
            return i + 3;
        }
        if (t.kind == Token::Kind::Ident &&
            (t.text == "clock_gettime" || t.text == "gettimeofday" ||
             t.text == "timespec_get" ||
             (t.text == "time" && bareCall(i))) &&
            is(i + 1, "(")) {
            noteWallclock(fn, t.line, t.text + "()");
            return i + 1;
        }

        // Raw randomness.
        if (t.kind == Token::Kind::Ident &&
            ((t.text == "rand" || t.text == "srand" ||
              t.text == "random" || t.text == "drand48") &&
             bareCall(i) && is(i + 1, "("))) {
            fn.sources.push_back(
                {TaintKind::RawRandom, t.line, t.text + "()"});
            return i + 1;
        }
        if (t.text == "random_device") {
            fn.sources.push_back(
                {TaintKind::RawRandom, t.line, "std::random_device"});
            return i + 1;
        }

        // Thread identity.
        if (t.text == "this_thread" && is(i + 1, "::") &&
            is(i + 2, "get_id")) {
            fn.sources.push_back({TaintKind::ThreadId, t.line,
                                  "this_thread::get_id()"});
            return i + 3;
        }
        if ((t.text == "pthread_self" || t.text == "gettid") &&
            is(i + 1, "(")) {
            fn.sources.push_back(
                {TaintKind::ThreadId, t.line, t.text + "()"});
            return i + 1;
        }

        // Pointer-valued comparison between two pointer locals.
        if ((t.text == "<" || t.text == ">") && i > 0 &&
            isIdent(i - 1) && isIdent(i + 1) &&
            funcLocals.pointers.contains(toks[i - 1].text) &&
            funcLocals.pointers.contains(toks[i + 1].text)) {
            notePointerOrder(
                t.line,
                str("ordering pointers '", toks[i - 1].text, "' ",
                    t.text, " '", toks[i + 1].text,
                    "' (ASLR-dependent)"));
            fn.sources.push_back(
                {TaintKind::PointerOrder, t.line,
                 "pointer-value comparison"});
            return i + 1;
        }

        // Calls and identifier uses.
        if (t.kind == Token::Kind::Ident && !isKeyword(t.text)) {
            if (is(i + 1, "(")) {
                fn.calls.push_back(callSiteAt(i));
                return i + 1;
            }
            const bool memberAccess =
                i > 0 && (is(i - 1, ".") || is(i - 1, "->"));
            if (!memberAccess)
                fn.identUses.push_back({t.text, t.line});
            return i + 1;
        }
        return i + 1;
    }

    /** True when ident i is called bare (not x.f(), not A::f()). */
    bool
    bareCall(std::size_t i) const
    {
        if (i == 0)
            return true;
        if (is(i - 1, ".") || is(i - 1, "->"))
            return false;
        if (is(i - 1, "::") && i >= 2 && isIdent(i - 2) &&
            toks[i - 2].text != "std")
            return false;
        return true;
    }

    CallSite
    callSiteAt(std::size_t i) const
    {
        CallSite c;
        c.name = toks[i].text;
        c.line = toks[i].line;
        std::size_t k = i;
        while (k >= 2 && is(k - 1, "::") && isIdent(k - 2) &&
               toks[k - 2].text != "std") {
            c.qual = c.qual.empty()
                ? toks[k - 2].text
                : toks[k - 2].text + "::" + c.qual;
            k -= 2;
        }
        c.member = k > 0 && (is(k - 1, ".") || is(k - 1, "->"));
        if (c.member && k >= 2 && isIdent(k - 2))
            c.recv = toks[k - 2].text;
        if (is(i + 1, "(")) {
            const std::size_t end = skipGroup(i + 1);
            for (std::size_t j = i + 2; j + 1 < end; ++j)
                if (isIdent(j) && !isKeyword(toks[j].text))
                    c.argIdents.push_back(toks[j].text);
        }
        return c;
    }

    std::size_t
    parseLocalStatic(std::size_t i, FunctionDef &fn)
    {
        const std::size_t end = statementEnd(i);
        bool isConst = false;
        std::size_t nameAt = SIZE_MAX;
        for (std::size_t k = i; k < end; ++k) {
            const std::string &t = toks[k].text;
            if (t == "const" || t == "constexpr")
                isConst = true;
            if (t == "(")
                break; // `static T f(...)` or init parens: name first
            if (isIdent(k) && !isKeyword(t) &&
                (is(k + 1, "=") || is(k + 1, ";") ||
                 is(k + 1, "{") || is(k + 1, "(")))
                nameAt = k;
        }
        if (nameAt != SIZE_MAX && !isConst) {
            GlobalVar g;
            g.name = toks[nameAt].text;
            g.file = out.file;
            g.line = toks[nameAt].line;
            g.isConst = false;
            g.storage = "function-local static";
            out.globals.push_back(g);
            fn.sources.push_back(
                {TaintKind::MutableGlobal, toks[nameAt].line,
                 str("function-local static '", g.name, "'")});
        }
        return i + 1; // rescan the statement for decls/calls
    }

    /** End of the statement starting at i (top-level ';'). */
    std::size_t
    statementEnd(std::size_t i) const
    {
        while (i < toks.size()) {
            const std::string &t = toks[i].text;
            if (t == ";" || t == "{" || t == "}")
                return i;
            if (t == "(" || t == "[") {
                i = skipGroup(i);
                continue;
            }
            ++i;
        }
        return i;
    }

    std::size_t
    parseFor(std::size_t i, FunctionDef &fn)
    {
        // Range-for: `for ( decl : range )` with no ';' before ':'.
        const std::size_t open = i + 1;
        const std::size_t close = skipGroup(open) - 1;
        std::size_t colon = SIZE_MAX;
        int depth = 0;
        for (std::size_t j = open; j <= close && j < toks.size();
             ++j) {
            const std::string &t = toks[j].text;
            if (t == "(" || t == "[" || t == "{")
                ++depth;
            else if (t == ")" || t == "]" || t == "}")
                --depth;
            else if (t == ";" && depth == 1)
                return i + 1; // classic for
            else if (t == ":" && depth == 1) {
                colon = j;
                break;
            }
        }
        if (colon == SIZE_MAX)
            return i + 1;

        // Does the range expression name an unordered container?
        std::string hit;
        for (std::size_t j = colon + 1; j <= close; ++j) {
            if (!isIdent(j) || isKeyword(toks[j].text))
                continue;
            if (funcLocals.unordered.contains(toks[j].text) ||
                tuUnordered.contains(toks[j].text)) {
                hit = toks[j].text;
                break;
            }
        }
        if (hit.empty())
            return i + 1;

        fn.sources.push_back(
            {TaintKind::UnorderedIter, toks[i].line,
             str("range-for over unordered container '", hit, "'")});

        UnorderedLoop loop;
        loop.line = toks[i].line;
        loop.var = hit;

        // Loop-body extent: a brace block or a single statement.
        std::size_t b0 = close + 1;
        std::size_t b1;
        if (is(b0, "{")) {
            b1 = skipGroup(b0);
            ++b0;
        } else {
            b1 = statementEnd(b0);
        }
        loop.endLine = loop.line;
        std::set<std::string> bodyIdents;
        for (std::size_t j = b0; j < b1 && j < toks.size(); ++j) {
            loop.endLine = std::max(loop.endLine, toks[j].line);
            if (isIdent(j) && !isKeyword(toks[j].text)) {
                bodyIdents.insert(toks[j].text);
                if (is(j + 1, "("))
                    loop.bodyCalls.push_back(callSiteAt(j));
            }
            if ((is(j, "+=") || is(j, "-=")) && j > 0 &&
                isIdent(j - 1) &&
                funcLocals.floats.contains(toks[j - 1].text))
                loop.accumulatesFloat = true;
        }
        loop.bodyIdents.assign(bodyIdents.begin(), bodyIdents.end());
        fn.unorderedLoops.push_back(std::move(loop));
        return i + 1; // body tokens are still scanned normally
    }

    void
    noteWallclock(FunctionDef &fn, std::uint64_t line,
                  std::string detail)
    {
        fn.sources.push_back({TaintKind::WallClock, line, detail});
        out.wallclockSites.push_back({line, std::move(detail)});
    }

    void
    notePointerOrder(std::uint64_t line, std::string detail)
    {
        out.pointerOrderSites.push_back({line, std::move(detail)});
    }

    std::vector<Token> toks;
    TuSymbols out;
    std::vector<Frame> scopes;
    std::optional<Frame> pending;
    VarTables funcLocals; //!< rebuilt at each function head
    std::set<std::string> tuUnordered; //!< members/globals by name
};

} // namespace

std::string
taintKindSlug(TaintKind k)
{
    switch (k) {
      case TaintKind::WallClock: return "wallclock";
      case TaintKind::RawRandom: return "random";
      case TaintKind::ThreadId: return "thread-id";
      case TaintKind::UnorderedIter: return "unordered-iter";
      case TaintKind::PointerOrder: return "pointer-order";
      case TaintKind::MutableGlobal: return "mutable-global";
    }
    panic("bad TaintKind");
}

TuSymbols
parseTu(const std::string &source, const std::string &rel_path)
{
    return TuParser(source, rel_path).run();
}

void
Program::addTu(TuSymbols tu)
{
    tusV.push_back(std::move(tu));
}

void
Program::link()
{
    functionsV.clear();
    globalsV.clear();
    for (const TuSymbols &tu : tusV) {
        for (const FunctionDef &f : tu.functions)
            functionsV.push_back(f);
        for (const GlobalVar &g : tu.globals)
            globalsV.push_back(g);
    }

    nameIndexV.clear();
    for (std::size_t i = 0; i < functionsV.size(); ++i)
        nameIndexV[functionsV[i].name].push_back(i);

    // Mutable-global name set; function-local statics already carry
    // their source mark and are scoped, so they do not match by name.
    std::map<std::string, const GlobalVar *> mutableGlobals;
    for (const GlobalVar &g : globalsV)
        if (!g.isConst && g.storage != "function-local static")
            mutableGlobals.emplace(g.name, &g);

    calleesV.assign(functionsV.size(), {});
    edgeLinesV.assign(functionsV.size(), {});
    for (std::size_t i = 0; i < functionsV.size(); ++i) {
        FunctionDef &f = functionsV[i];
        std::set<std::size_t> edges;
        for (const CallSite &c : f.calls) {
            auto it = nameIndexV.find(c.name);
            if (it == nameIndexV.end())
                continue;
            for (std::size_t cand : it->second) {
                if (cand == i)
                    continue; // self-recursion adds nothing
                if (!c.qual.empty()) {
                    // Match the written qualifier as a whole-component
                    // suffix of the candidate's qualified name: B::f
                    // matches B::f and A::B::f, never AB::f.
                    const std::string tail =
                        "::" + c.qual + "::" + c.name;
                    const std::string &q =
                        functionsV[cand].qualified;
                    if (q != tail.substr(2) &&
                        (q.size() < tail.size() ||
                         q.compare(q.size() - tail.size(),
                                   tail.size(), tail) != 0))
                        continue;
                }
                edges.insert(cand);
                auto [el, fresh] =
                    edgeLinesV[i].emplace(cand, c.line);
                if (!fresh && c.line < el->second)
                    el->second = c.line;
            }
        }
        calleesV[i].assign(edges.begin(), edges.end());

        // Identifier uses of known mutable globals become source
        // marks (first use per global per function).
        std::set<std::string> seen;
        for (const auto &[name, line] : f.identUses) {
            auto g = mutableGlobals.find(name);
            if (g == mutableGlobals.end() || !seen.insert(name).second)
                continue;
            if (g->second->file == f.file && g->second->line == line)
                continue; // the declaration itself
            f.sources.push_back(
                {TaintKind::MutableGlobal, line,
                 str("access to mutable ", g->second->storage,
                     " state '", name, "' (", g->second->file, ":",
                     g->second->line, ")")});
        }
        f.identUses.clear();
        f.identUses.shrink_to_fit();
    }
}

std::vector<std::size_t>
Program::byName(const std::string &name) const
{
    auto it = nameIndexV.find(name);
    return it == nameIndexV.end() ? std::vector<std::size_t>{}
                                  : it->second;
}

std::uint64_t
Program::edgeLine(std::size_t i, std::size_t c) const
{
    auto it = edgeLinesV[i].find(c);
    return it == edgeLinesV[i].end() ? 0 : it->second;
}

} // namespace sadapt::analysis
