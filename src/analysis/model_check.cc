#include "analysis/model_check.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <optional>
#include <sstream>
#include <vector>

#include "adapt/telemetry.hh"
#include "common/logging.hh"
#include "sim/config.hh"
#include "sim/counters.hh"

namespace sadapt::analysis {

const std::vector<FeatureDomain> &
telemetryFeatureDomains()
{
    static const std::vector<FeatureDomain> domains = [] {
        std::vector<FeatureDomain> d;
        d.reserve(numTelemetryFeatures());
        // Config parameters are normalized to [0, 1] by buildFeatures.
        for (std::size_t i = 0; i < numParams; ++i)
            d.push_back({0.0, 1.0});
        for (const CounterBounds &b : counterBounds())
            d.push_back({b.lo, b.hi});
        SADAPT_ASSERT(d.size() == numTelemetryFeatures(),
                      "feature domains out of sync with schema");
        return d;
    }();
    return domains;
}

namespace {

/** Upper bound on plausible node counts; beyond this, reject early. */
constexpr std::uint64_t maxModelNodes = 1u << 20;

struct RawNode
{
    int leaf = 1;
    std::uint64_t featureIdx = 0;
    double threshold = 0.0;
    std::int64_t left = -1;
    std::int64_t right = -1;
    std::uint64_t klass = 0;
    double importanceGain = 0.0;
};

struct RawTree
{
    std::uint64_t numFeatures = 0;
    std::uint64_t headerLine = 0;
    std::vector<RawNode> nodes;
    std::vector<std::uint64_t> nodeLines; //!< source line per node
};

/** Line-oriented reader that keeps a 1-based line counter. */
class LineReader
{
  public:
    explicit LineReader(std::istream &in)
        : inV(in)
    {
    }

    bool
    next(std::string &line)
    {
        while (std::getline(inV, line)) {
            ++linenoV;
            if (line.find_first_not_of(" \t\r") != std::string::npos)
                return true;
        }
        return false;
    }

    std::uint64_t lineno() const { return linenoV; }

  private:
    std::istream &inV;
    std::uint64_t linenoV = 0;
};

/**
 * Parse a "tree F N" header from an already-read line. Returns the
 * node count, or nullopt after reporting.
 */
std::optional<std::uint64_t>
parseTreeHeader(const std::string &line, std::uint64_t lineno,
                const std::string &name, Report &report, RawTree &tree)
{
    std::istringstream hs(line);
    std::string magic;
    std::uint64_t num_nodes = 0;
    if (!(hs >> magic >> tree.numFeatures >> num_nodes) ||
        magic != "tree") {
        report.add("model-header", name, lineno, Severity::Error,
                   "malformed tree header (expected 'tree "
                   "<features> <nodes>')");
        return std::nullopt;
    }
    tree.headerLine = lineno;
    if (num_nodes == 0) {
        report.add("model-empty", name, lineno, Severity::Error,
                   "tree with zero nodes");
        return std::nullopt;
    }
    if (num_nodes > maxModelNodes) {
        report.add("model-header", name, lineno, Severity::Error,
                   str("implausible node count ", num_nodes));
        return std::nullopt;
    }
    return num_nodes;
}

/** Parse the N node records following a tree header. */
bool
parseTreeBody(LineReader &reader, std::uint64_t num_nodes,
              const std::string &name, Report &report, RawTree &tree)
{
    std::string line;
    tree.nodes.reserve(num_nodes);
    for (std::uint64_t i = 0; i < num_nodes; ++i) {
        if (!reader.next(line)) {
            report.add("model-truncated", name, reader.lineno(),
                       Severity::Error,
                       str("node list ends at ", i, " of ", num_nodes,
                           " nodes"));
            return false;
        }
        std::istringstream ns(line);
        RawNode n;
        // The threshold is read as a token and converted with
        // strtod(): ostream prints NaN/Inf thresholds as "nan"/"inf",
        // which istream extraction rejects, and those must reach the
        // model-threshold-finite check instead of dying here.
        std::string thr;
        if (!(ns >> n.leaf >> n.featureIdx >> thr >> n.left >>
              n.right >> n.klass >> n.importanceGain)) {
            report.add("model-node-record", name, reader.lineno(),
                       Severity::Error, "malformed node record");
            return false;
        }
        char *thr_end = nullptr;
        n.threshold = std::strtod(thr.c_str(), &thr_end);
        if (thr_end == thr.c_str() || *thr_end != '\0') {
            report.add("model-node-record", name, reader.lineno(),
                       Severity::Error,
                       str("bad threshold '", thr, "'"));
            return false;
        }
        if (n.leaf != 0 && n.leaf != 1) {
            report.add("model-node-record", name, reader.lineno(),
                       Severity::Error,
                       str("leaf flag must be 0 or 1, got ", n.leaf));
            return false;
        }
        tree.nodes.push_back(n);
        tree.nodeLines.push_back(reader.lineno());
    }
    return true;
}

/** Read header line + body: one complete "tree" block. */
bool
parseTree(LineReader &reader, const std::string &name, Report &report,
          RawTree &tree)
{
    std::string line;
    if (!reader.next(line)) {
        report.add("model-truncated", name, reader.lineno(),
                   Severity::Error, "missing tree header");
        return false;
    }
    const auto num_nodes =
        parseTreeHeader(line, reader.lineno(), name, report, tree);
    return num_nodes &&
        parseTreeBody(reader, *num_nodes, name, report, tree);
}

/**
 * Structural pass: child links, reachability, cycles. Returns true
 * when the node array forms a proper tree rooted at node 0 (the
 * value-level passes below require that).
 */
bool
checkStructure(const RawTree &tree, const std::string &name,
               Report &report)
{
    const auto n = static_cast<std::int64_t>(tree.nodes.size());
    bool sound = true;
    std::vector<int> parents(tree.nodes.size(), 0);
    for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
        const RawNode &node = tree.nodes[i];
        if (node.leaf)
            continue;
        for (const std::int64_t child : {node.left, node.right}) {
            if (child < 0 || child >= n) {
                report.add("model-child-dangling", name,
                           tree.nodeLines[i], Severity::Error,
                           str("split node ", i,
                               " references child ", child,
                               " outside [0, ", n, ")"));
                sound = false;
            } else if (child == static_cast<std::int64_t>(i)) {
                report.add("model-cycle", name, tree.nodeLines[i],
                           Severity::Error,
                           str("node ", i, " is its own child"));
                sound = false;
            } else {
                ++parents[child];
            }
        }
        if (node.left == node.right && node.left >= 0 &&
            node.left < n) {
            report.add("model-child-dangling", name,
                       tree.nodeLines[i], Severity::Error,
                       str("split node ", i, " has identical left "
                           "and right children"));
            sound = false;
        }
    }
    if (!sound)
        return false;

    for (std::size_t i = 1; i < parents.size(); ++i) {
        if (parents[i] > 1) {
            report.add("model-cycle", name, tree.nodeLines[i],
                       Severity::Error,
                       str("node ", i, " has ", parents[i],
                           " parents (shared subtree or cycle)"));
            sound = false;
        }
    }
    if (parents[0] != 0) {
        report.add("model-cycle", name, tree.nodeLines[0],
                   Severity::Error,
                   "root node is referenced as a child");
        sound = false;
    }
    if (!sound)
        return false;

    // With every non-root node having exactly <= 1 parent and the
    // root none, unreachable nodes are exactly those with 0 parents.
    bool dead = false;
    for (std::size_t i = 1; i < parents.size(); ++i) {
        if (parents[i] == 0) {
            report.add("model-dead-node", name, tree.nodeLines[i],
                       Severity::Error,
                       str("node ", i,
                           " is unreachable from the root"));
            dead = true;
        }
    }
    return !dead;
}

/** Domain/value pass: features, thresholds, leaf predictions. */
void
checkValues(const RawTree &tree, const std::string &name,
            std::optional<Param> target, Report &report)
{
    const auto &domains = telemetryFeatureDomains();
    const bool schema_tree = tree.numFeatures == domains.size();
    if (!schema_tree) {
        report.add("model-feature-count", name, tree.headerLine,
                   Severity::Error,
                   str("tree declares ", tree.numFeatures,
                       " features; the telemetry schema has ",
                       domains.size()));
    }
    for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
        const RawNode &node = tree.nodes[i];
        if (node.importanceGain < 0.0) {
            report.add("model-importance-negative", name,
                       tree.nodeLines[i], Severity::Warning,
                       str("node ", i, " has negative importance gain ",
                           node.importanceGain));
        }
        if (node.leaf) {
            if (target && node.klass >= paramCardinality(*target)) {
                report.add(
                    "model-leaf-domain", name, tree.nodeLines[i],
                    Severity::Error,
                    str("leaf predicts value ", node.klass,
                        " for parameter ", paramName(*target),
                        " (cardinality ",
                        paramCardinality(*target), ")"));
            }
            continue;
        }
        if (node.featureIdx >= tree.numFeatures) {
            report.add("model-feature-range", name, tree.nodeLines[i],
                       Severity::Error,
                       str("split on feature ", node.featureIdx,
                           " but the tree declares ",
                           tree.numFeatures, " features"));
            continue;
        }
        if (!std::isfinite(node.threshold)) {
            report.add("model-threshold-finite", name,
                       tree.nodeLines[i], Severity::Error,
                       str("non-finite split threshold at node ", i));
            continue;
        }
        if (schema_tree) {
            const FeatureDomain &d = domains[node.featureIdx];
            if (node.threshold < d.lo || node.threshold > d.hi) {
                report.add(
                    "model-threshold-domain", name, tree.nodeLines[i],
                    Severity::Error,
                    str("threshold ", node.threshold, " on feature '",
                        telemetryFeatureNames()[node.featureIdx],
                        "' is outside its physical domain [", d.lo,
                        ", ", d.hi, "]"));
            }
        }
    }
}

/**
 * Reachability pass: propagate per-feature intervals from the root
 * and flag branches no input inside the feature domains can take.
 * Requires a structurally sound tree and a schema-sized feature set.
 */
void
checkReachability(const RawTree &tree, const std::string &name,
                  Report &report)
{
    const auto &schema = telemetryFeatureDomains();
    if (tree.numFeatures != schema.size())
        return;
    struct Item
    {
        std::int64_t node;
        std::vector<FeatureDomain> box;
    };
    std::vector<Item> stack;
    stack.push_back({0, {schema.begin(), schema.end()}});
    while (!stack.empty()) {
        Item item = std::move(stack.back());
        stack.pop_back();
        const RawNode &node = tree.nodes[item.node];
        if (node.leaf)
            continue;
        if (node.featureIdx >= tree.numFeatures ||
            !std::isfinite(node.threshold))
            continue; // already reported by checkValues
        const FeatureDomain &d = item.box[node.featureIdx];
        // predict() goes left when feature <= threshold.
        const bool left_feasible = d.lo <= node.threshold;
        const bool right_feasible = node.threshold < d.hi;
        if (!left_feasible || !right_feasible) {
            report.add(
                "model-unreachable-branch", name,
                tree.nodeLines[item.node], Severity::Error,
                str("the ", left_feasible ? "right" : "left",
                    " branch of node ", item.node,
                    " is unreachable: feature '",
                    telemetryFeatureNames()[node.featureIdx],
                    "' is confined to [", d.lo, ", ", d.hi,
                    "] here but the split threshold is ",
                    node.threshold));
        }
        if (left_feasible) {
            Item l{node.left, item.box};
            l.box[node.featureIdx].hi =
                std::min(l.box[node.featureIdx].hi, node.threshold);
            stack.push_back(std::move(l));
        }
        if (right_feasible) {
            Item r{node.right, std::move(item.box)};
            r.box[node.featureIdx].lo =
                std::max(r.box[node.featureIdx].lo, node.threshold);
            stack.push_back(std::move(r));
        }
    }
}

/**
 * Redundancy pass: flag splits whose two subtrees are structurally
 * identical (the split can never change the prediction). Signatures
 * are computed bottom-up with an explicit stack.
 */
void
checkDuplicateSubtrees(const RawTree &tree, const std::string &name,
                       Report &report)
{
    std::vector<std::string> sig(tree.nodes.size());
    std::vector<std::int64_t> order;
    std::vector<std::int64_t> stack = {0};
    std::vector<char> expanded(tree.nodes.size(), 0);
    while (!stack.empty()) {
        const std::int64_t n = stack.back();
        const RawNode &node = tree.nodes[n];
        if (node.leaf || expanded[n]) {
            stack.pop_back();
            order.push_back(n);
            continue;
        }
        expanded[n] = 1;
        stack.push_back(node.left);
        stack.push_back(node.right);
    }
    for (const std::int64_t n : order) {
        const RawNode &node = tree.nodes[n];
        if (node.leaf) {
            sig[n] = str("L", node.klass);
        } else {
            sig[n] = str("S", node.featureIdx, "@", node.threshold,
                         "(", sig[node.left], ",", sig[node.right],
                         ")");
            if (sig[node.left] == sig[node.right]) {
                report.add("model-duplicate-subtree", name,
                           tree.nodeLines[n], Severity::Warning,
                           str("both branches of node ", n,
                               " are identical subtrees; the split "
                               "is redundant"));
            }
        }
    }
}

void
checkOneTree(const RawTree &tree, const std::string &name,
             std::optional<Param> target, Report &report)
{
    checkValues(tree, name, target, report);
    if (!checkStructure(tree, name, report))
        return;
    checkReachability(tree, name, report);
    checkDuplicateSubtrees(tree, name, report);
}

} // namespace

Report
checkModelStream(std::istream &in, const std::string &name)
{
    Report report;
    LineReader reader(in);
    std::string line;
    if (!reader.next(line)) {
        report.add("model-header", name, 0, Severity::Error,
                   "empty model file");
        return report;
    }
    std::istringstream hs(line);
    std::string magic;
    hs >> magic;

    if (magic == "predictor") {
        std::uint64_t count = 0;
        if (!(hs >> count)) {
            report.add("model-header", name, reader.lineno(),
                       Severity::Error,
                       "malformed predictor header");
            return report;
        }
        if (count != numParams) {
            report.add("model-param-count", name, reader.lineno(),
                       Severity::Error,
                       str("ensemble declares ", count,
                           " trees; the parameter space has ",
                           numParams));
            // The per-parameter mapping is meaningless; still try to
            // verify whatever trees follow as standalone trees.
        }
        for (std::uint64_t i = 0; i < count; ++i) {
            RawTree tree;
            if (!parseTree(reader, name, report, tree))
                return report;
            std::optional<Param> target;
            if (count == numParams)
                target = allParams()[i];
            checkOneTree(tree, name, target, report);
        }
        if (reader.next(line)) {
            report.add("model-trailing", name, reader.lineno(),
                       Severity::Warning,
                       "trailing content after the last tree");
        }
        return report;
    }

    if (magic == "tree") {
        RawTree tree;
        const auto num_nodes = parseTreeHeader(
            line, reader.lineno(), name, report, tree);
        if (num_nodes &&
            parseTreeBody(reader, *num_nodes, name, report, tree))
            checkOneTree(tree, name, std::nullopt, report);
        return report;
    }

    report.add("model-header", name, reader.lineno(), Severity::Error,
               "unknown model magic '" + magic +
                   "' (expected 'predictor' or 'tree')");
    return report;
}

Report
checkModelFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        Report report;
        report.add("model-io", path, 0, Severity::Error,
                   "cannot open model file");
        return report;
    }
    Report report = checkModelStream(in, path);
    report.sort();
    return report;
}

} // namespace sadapt::analysis
