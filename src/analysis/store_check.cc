#include "analysis/store_check.hh"

#include <cstdint>
#include <fstream>
#include <map>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "store/epoch_store.hh"
#include "store/record_log.hh"

namespace sadapt::analysis {

Report
checkStoreFile(const std::string &path, std::uint64_t expected_salt)
{
    Report report;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        report.add("store-io", path, 0, Severity::Error,
                   "cannot open store file");
        return report;
    }

    // Pure scan: the validator must never repair (truncate) the file
    // it is judging, so it uses scanRecordStream directly instead of
    // EpochStore::open().
    const store::ScanResult scan = store::scanRecordStream(in);
    if (!scan.headerOk) {
        if (scan.formatVersion != 0 &&
            scan.formatVersion != store::recordLogFormatVersion) {
            report.add("store-version", path, 0, Severity::Error,
                       str("container format version ",
                           scan.formatVersion, " (this build reads ",
                           store::recordLogFormatVersion, ")"));
        } else {
            report.add("store-magic", path, 0, Severity::Error,
                       "not a sadapt store file (bad header magic)");
        }
        return report;
    }
    if (scan.corruptRecords > 0) {
        report.add("store-crc", path, 0, Severity::Error,
                   str(scan.corruptRecords,
                       " record(s) fail their payload CRC (skipped "
                       "at run time; compact() drops them)"));
    }
    if (scan.tornTailBytes > 0) {
        report.add("store-torn-tail", path, scan.records.size() + 1,
                   Severity::Warning,
                   str(scan.tornTailBytes,
                       " trailing byte(s) after the last intact "
                       "frame (torn append; open() truncates them)"));
    }

    // Cross-record key consistency, mirroring EpochStore's index.
    struct SeenEntry
    {
        std::uint32_t epochCount = 0;
        std::vector<bool> present;
    };
    std::map<std::pair<std::uint64_t, std::uint32_t>, SeenEntry> seen;
    std::size_t ordinal = 0;
    for (const store::ScanRecord &rec : scan.records) {
        ++ordinal;
        const auto version = store::recordPayloadVersion(rec.payload);
        if (version && *version != store::storeSchemaVersion) {
            report.add("store-version", path, ordinal,
                       Severity::Error,
                       str("record payload schema version ", *version,
                           " (this build reads ",
                           store::storeSchemaVersion, ")"));
            continue;
        }
        const Result<store::StoredCell> cell =
            store::decodeStoreRecord(rec.payload);
        if (!cell.isOk()) {
            report.add("store-key", path, ordinal, Severity::Error,
                       cell.message());
            continue;
        }
        const store::RecordKey &key = cell.value().key;
        if (expected_salt != 0 && key.simSalt != expected_salt) {
            report.add("store-salt", path, ordinal, Severity::Warning,
                       str("record keyed by simulator salt ",
                           key.simSalt, ", not this build's ",
                           expected_salt,
                           " (ignored at run time; compact() drops "
                           "it)"));
            continue;
        }
        if (key.epochCount == 0 ||
            key.epochIndex >= key.epochCount) {
            report.add("store-key", path, ordinal, Severity::Error,
                       str("epoch index ", key.epochIndex,
                           " out of range for epoch count ",
                           key.epochCount));
            continue;
        }
        SeenEntry &entry =
            seen[{key.fingerprint, key.configCode}];
        if (entry.epochCount == 0) {
            entry.epochCount = key.epochCount;
            entry.present.assign(key.epochCount, false);
        } else if (entry.epochCount != key.epochCount) {
            report.add("store-key", path, ordinal, Severity::Error,
                       str("record claims ", key.epochCount,
                           " epochs where earlier records of the "
                           "same result claim ", entry.epochCount));
            continue;
        }
        if (entry.present[key.epochIndex]) {
            report.add("store-key", path, ordinal, Severity::Warning,
                       str("duplicate cell for epoch ",
                           key.epochIndex,
                           " of one result (latest wins at run "
                           "time; compact() deduplicates)"));
        }
        entry.present[key.epochIndex] = true;
    }
    return report;
}

} // namespace sadapt::analysis
