#include "analysis/finding.hh"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <unordered_set>

#include "common/logging.hh"

namespace sadapt::analysis {

std::string
severityName(Severity s)
{
    switch (s) {
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    panic("bad Severity");
}

std::string
Finding::format() const
{
    std::string loc = file;
    if (line > 0)
        loc += str(":", line);
    std::string text = str(loc, ": [", severityName(severity), "] ",
                           checkId, ": ", message);
    if (!chain.empty()) {
        text += "; chain: ";
        for (std::size_t i = 0; i < chain.size(); ++i) {
            if (i > 0)
                text += " -> ";
            text += chain[i];
        }
    }
    return text;
}

std::string
Finding::key() const
{
    std::string loc = file;
    if (line > 0)
        loc += str(":", line);
    return str(checkId, " ", loc);
}

void
Report::add(std::string check_id, std::string file, std::uint64_t line,
            Severity severity, std::string message)
{
    add(Finding{std::move(check_id), std::move(file), line, severity,
                std::move(message), {}});
}

std::size_t
Report::errorCount() const
{
    return static_cast<std::size_t>(
        std::count_if(findingsV.begin(), findingsV.end(),
                      [](const Finding &f) {
                          return f.severity == Severity::Error;
                      }));
}

std::size_t
Report::warningCount() const
{
    return findingsV.size() - errorCount();
}

void
Report::applyBaseline(const std::vector<std::string> &baseline_keys)
{
    const std::unordered_set<std::string> keys(baseline_keys.begin(),
                                               baseline_keys.end());
    const std::size_t before = findingsV.size();
    std::erase_if(findingsV, [&](const Finding &f) {
        return keys.contains(f.key());
    });
    suppressedV += before - findingsV.size();
}

std::vector<BaselineEntry>
Report::applyBaseline(const std::vector<BaselineEntry> &entries)
{
    std::unordered_set<std::string> used;
    for (const Finding &f : findingsV)
        used.insert(f.key());

    std::unordered_set<std::string> keys;
    std::vector<BaselineEntry> stale;
    for (const BaselineEntry &e : entries) {
        keys.insert(e.key);
        if (!used.contains(e.key))
            stale.push_back(e);
    }

    const std::size_t before = findingsV.size();
    std::erase_if(findingsV, [&](const Finding &f) {
        return keys.contains(f.key());
    });
    suppressedV += before - findingsV.size();
    return stale;
}

void
Report::sort()
{
    std::stable_sort(findingsV.begin(), findingsV.end(),
                     [](const Finding &a, const Finding &b) {
                         if (a.file != b.file)
                             return a.file < b.file;
                         if (a.line != b.line)
                             return a.line < b.line;
                         return a.checkId < b.checkId;
                     });
}

void
Report::merge(Report other)
{
    for (auto &f : other.findingsV)
        findingsV.push_back(std::move(f));
    suppressedV += other.suppressedV;
}

void
Report::print(std::ostream &out) const
{
    for (const auto &f : findingsV)
        out << f.format() << '\n';
    out << "sadapt-check: " << errorCount() << " error(s), "
        << warningCount() << " warning(s)";
    if (suppressedV > 0)
        out << ", " << suppressedV << " baseline-suppressed";
    out << '\n';
}

void
Report::printJson(std::ostream &out) const
{
    auto esc = [](const std::string &s) {
        std::string r;
        r.reserve(s.size() + 2);
        for (char c : s) {
            switch (c) {
              case '"': r += "\\\""; break;
              case '\\': r += "\\\\"; break;
              case '\n': r += "\\n"; break;
              case '\t': r += "\\t"; break;
              case '\r': r += "\\r"; break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    static const char hex[] = "0123456789abcdef";
                    r += "\\u00";
                    r += hex[(c >> 4) & 0xF];
                    r += hex[c & 0xF];
                } else {
                    r += c;
                }
            }
        }
        return r;
    };

    out << "{\n"
        << "  \"version\": 1,\n"
        << "  \"errors\": " << errorCount() << ",\n"
        << "  \"warnings\": " << warningCount() << ",\n"
        << "  \"suppressed\": " << suppressedV << ",\n"
        << "  \"findings\": [";
    for (std::size_t i = 0; i < findingsV.size(); ++i) {
        const Finding &f = findingsV[i];
        out << (i == 0 ? "\n" : ",\n");
        out << "    {\"rule\": \"" << esc(f.checkId)
            << "\", \"file\": \"" << esc(f.file)
            << "\", \"line\": " << f.line << ", \"severity\": \""
            << severityName(f.severity) << "\", \"message\": \""
            << esc(f.message) << "\", \"chain\": [";
        for (std::size_t j = 0; j < f.chain.size(); ++j) {
            if (j > 0)
                out << ", ";
            out << '"' << esc(f.chain[j]) << '"';
        }
        out << "]}";
    }
    out << (findingsV.empty() ? "]\n" : "\n  ]\n") << "}\n";
}

Result<std::vector<BaselineEntry>>
loadBaselineEntries(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Status::error("cannot open baseline file: " + path);
    std::vector<BaselineEntry> entries;
    std::string line;
    std::uint64_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto start = line.find_first_not_of(" \t\r");
        if (start == std::string::npos || line[start] == '#')
            continue;
        const auto end = line.find_last_not_of(" \t\r");
        entries.push_back(
            {line.substr(start, end - start + 1), lineno});
    }
    return entries;
}

Result<std::vector<std::string>>
loadBaseline(const std::string &path)
{
    auto entries = loadBaselineEntries(path);
    if (!entries.isOk())
        return entries.status();
    std::vector<std::string> keys;
    keys.reserve(entries.value().size());
    for (const BaselineEntry &e : entries.value())
        keys.push_back(e.key);
    return keys;
}

} // namespace sadapt::analysis
