#include "analysis/finding.hh"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <unordered_set>

#include "common/logging.hh"

namespace sadapt::analysis {

std::string
severityName(Severity s)
{
    switch (s) {
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    panic("bad Severity");
}

std::string
Finding::format() const
{
    std::string loc = file;
    if (line > 0)
        loc += str(":", line);
    return str(loc, ": [", severityName(severity), "] ", checkId,
               ": ", message);
}

std::string
Finding::key() const
{
    std::string loc = file;
    if (line > 0)
        loc += str(":", line);
    return str(checkId, " ", loc);
}

void
Report::add(std::string check_id, std::string file, std::uint64_t line,
            Severity severity, std::string message)
{
    add(Finding{std::move(check_id), std::move(file), line, severity,
                std::move(message)});
}

std::size_t
Report::errorCount() const
{
    return static_cast<std::size_t>(
        std::count_if(findingsV.begin(), findingsV.end(),
                      [](const Finding &f) {
                          return f.severity == Severity::Error;
                      }));
}

std::size_t
Report::warningCount() const
{
    return findingsV.size() - errorCount();
}

void
Report::applyBaseline(const std::vector<std::string> &baseline_keys)
{
    const std::unordered_set<std::string> keys(baseline_keys.begin(),
                                               baseline_keys.end());
    const std::size_t before = findingsV.size();
    std::erase_if(findingsV, [&](const Finding &f) {
        return keys.contains(f.key());
    });
    suppressedV += before - findingsV.size();
}

void
Report::sort()
{
    std::stable_sort(findingsV.begin(), findingsV.end(),
                     [](const Finding &a, const Finding &b) {
                         if (a.file != b.file)
                             return a.file < b.file;
                         if (a.line != b.line)
                             return a.line < b.line;
                         return a.checkId < b.checkId;
                     });
}

void
Report::merge(Report other)
{
    for (auto &f : other.findingsV)
        findingsV.push_back(std::move(f));
    suppressedV += other.suppressedV;
}

void
Report::print(std::ostream &out) const
{
    for (const auto &f : findingsV)
        out << f.format() << '\n';
    out << "sadapt-check: " << errorCount() << " error(s), "
        << warningCount() << " warning(s)";
    if (suppressedV > 0)
        out << ", " << suppressedV << " baseline-suppressed";
    out << '\n';
}

Result<std::vector<std::string>>
loadBaseline(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Status::error("cannot open baseline file: " + path);
    std::vector<std::string> keys;
    std::string line;
    while (std::getline(in, line)) {
        const auto start = line.find_first_not_of(" \t\r");
        if (start == std::string::npos || line[start] == '#')
            continue;
        const auto end = line.find_last_not_of(" \t\r");
        keys.push_back(line.substr(start, end - start + 1));
    }
    return keys;
}

} // namespace sadapt::analysis
