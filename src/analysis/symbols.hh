/**
 * @file
 * Symbol tables and a cross-TU call graph for the determinism
 * analyzer, built on the shared analysis lexer (analysis/lexer) — no
 * libclang, no preprocessor.
 *
 * parseTu() runs a lightweight declaration/scope parser over one
 * source buffer: it tracks namespace/class/function brace scopes,
 * recognizes function definitions (including out-of-class member
 * definitions, constructors with init lists, and operators), records
 * every call site inside each body, and collects the declaration
 * facts the determinism rules need — mutable namespace-scope /
 * class-static / function-local-static variables, unordered-container
 * variables, pointer-typed locals, float accumulators — plus the
 * nondeterminism *source marks* observed in each body (wall-clock
 * reads, raw randomness, thread ids, unordered-container iteration,
 * pointer-order dependence, mutable-global access).
 *
 * Program merges per-TU tables and resolves call sites by name into a
 * call graph (an over-approximation: an unqualified or member call
 * resolves to every known function of that name). The taint pass in
 * analysis/determinism_check walks this graph from source marks to
 * deterministic-output sinks.
 *
 * The parser is forgiving by construction: unrecognized constructs
 * are skipped, never fatal, so it degrades to fewer facts rather than
 * wrong ones.
 */

#ifndef SADAPT_ANALYSIS_SYMBOLS_HH
#define SADAPT_ANALYSIS_SYMBOLS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sadapt::analysis {

/** The nondeterminism source classes the taint pass seeds from. */
enum class TaintKind : std::uint8_t
{
    WallClock,     //!< chrono clock now(), time(), gettimeofday, ...
    RawRandom,     //!< rand()/srand()/random_device outside common/rng
    ThreadId,      //!< this_thread::get_id, pthread_self, gettid
    UnorderedIter, //!< iteration over an unordered container
    PointerOrder,  //!< pointer-valued comparison / pointer-keyed maps
    MutableGlobal, //!< access to non-const static-storage state
};

/** Stable slug for check ids: "wallclock", "pointer-order", ... */
std::string taintKindSlug(TaintKind k);

/** One nondeterminism source observed inside a function body. */
struct SourceMark
{
    TaintKind kind;
    std::uint64_t line = 0;
    std::string detail; //!< e.g. "steady_clock::now()"
};

/** One call site inside a function body. */
struct CallSite
{
    std::string name;    //!< unqualified callee name
    std::string qual;    //!< written qualifier ("A::B"), or empty
    std::string recv;    //!< receiver identifier of a member call
    bool member = false; //!< obj.name(...) / obj->name(...)
    std::uint64_t line = 0;
    /** Identifiers appearing in the argument list, in order. */
    std::vector<std::string> argIdents;
};

/** A range-for over an unordered container, for lint-unordered-iter. */
struct UnorderedLoop
{
    std::uint64_t line = 0;
    std::uint64_t endLine = 0; //!< last line of the loop body
    std::string var; //!< the container variable iterated
    std::vector<CallSite> bodyCalls;
    /** Identifiers the body mentions (sorted, deduplicated). */
    std::vector<std::string> bodyIdents;
    bool accumulatesFloat = false; //!< +=/-= on a float variable
};

/** One function definition (body seen) in one TU. */
struct FunctionDef
{
    std::string name;      //!< unqualified
    std::string qualified; //!< Namespace::Class::name as scoped
    std::string file;
    std::uint64_t line = 0;
    std::vector<CallSite> calls;
    std::vector<SourceMark> sources;
    std::vector<UnorderedLoop> unorderedLoops;
    /**
     * Identifier uses (not calls, not member accesses) — matched
     * against the program's mutable globals by Program::link(),
     * which appends MutableGlobal source marks and then drops this.
     */
    std::vector<std::pair<std::string, std::uint64_t>> identUses;
};

/** A non-const static-storage-duration variable. */
struct GlobalVar
{
    std::string name;
    std::string file;
    std::uint64_t line = 0;
    bool isConst = false;
    /** "namespace-scope", "class-static", "function-local static". */
    std::string storage;
};

/** A site for a location-addressed rule outside any taint walk. */
struct RuleSite
{
    std::uint64_t line = 0;
    std::string detail;
};

/** Everything parseTu() extracts from one translation unit. */
struct TuSymbols
{
    std::string file;
    std::vector<FunctionDef> functions;
    std::vector<GlobalVar> globals;
    std::vector<RuleSite> wallclockSites;    //!< for lint-wallclock
    std::vector<RuleSite> pointerOrderSites; //!< for lint-pointer-order
};

/** Parse one source buffer; `rel_path` becomes the symbol file. */
TuSymbols parseTu(const std::string &source,
                  const std::string &rel_path);

/**
 * The merged cross-TU program model. addTu() in deterministic (path)
 * order, then link() once; afterwards functions(), globals() and
 * callees() are stable across runs and machines.
 */
class Program
{
  public:
    void addTu(TuSymbols tu);

    /**
     * Resolve call sites into call-graph edges by name (qualified
     * calls require a matching qualifier suffix; unqualified and
     * member calls match every function of that name) and convert
     * identifier uses of known mutable globals into MutableGlobal
     * source marks.
     */
    void link();

    const std::vector<FunctionDef> &
    functions() const
    {
        return functionsV;
    }

    const std::vector<GlobalVar> &
    globals() const
    {
        return globalsV;
    }

    const std::vector<TuSymbols> &
    tus() const
    {
        return tusV;
    }

    /** Call-graph edges of functions()[i], sorted, deduplicated. */
    const std::vector<std::size_t> &
    callees(std::size_t i) const
    {
        return calleesV[i];
    }

    /** Indices of functions named `name` (unqualified), sorted. */
    std::vector<std::size_t> byName(const std::string &name) const;

    /**
     * Line of the first call site in functions()[i] that resolved to
     * callee c during link(), or 0 when no such edge exists. Unlike a
     * by-name lookup this cannot confuse two same-named callees.
     */
    std::uint64_t edgeLine(std::size_t i, std::size_t c) const;

  private:
    std::vector<TuSymbols> tusV; //!< per-TU sites for the lint rules
    std::vector<FunctionDef> functionsV;
    std::vector<GlobalVar> globalsV;
    std::vector<std::vector<std::size_t>> calleesV;
    std::vector<std::map<std::size_t, std::uint64_t>> edgeLinesV;
    std::map<std::string, std::vector<std::size_t>> nameIndexV;
};

} // namespace sadapt::analysis

#endif // SADAPT_ANALYSIS_SYMBOLS_HH
