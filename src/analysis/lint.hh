/**
 * @file
 * Token-based source lint for repo-specific C++ rules.
 *
 * The shared analysis lexer (analysis/lexer — no libclang dependency,
 * also the tokenizer behind the determinism analyzer's symbol parser)
 * strips comments and literals; the lint checks its token stream for
 * the repo's rules:
 *
 *  - lint-banned-call: no rand()/srand()/time() in src/ — all
 *    randomness goes through common/rng (deterministic, seedable)
 *    and all timing through the simulated clock.
 *  - lint-naked-new: no naked new-expressions in src/; containers or
 *    std::make_unique own every allocation.
 *  - lint-naked-thread: no raw std::thread/jthread/async spawning and
 *    no detach() outside common/threading — the ThreadPool and
 *    parallelFor own every worker thread (and drain on destruction),
 *    so sweeps stay deterministic and join-safe.
 *  - lint-float-eq: no ==/!= against floating-point literals in
 *    sim/ and adapt/, where cycle/energy arithmetic makes exact
 *    equality a latent bug.
 *  - lint-unchecked-status: a registry of Status/Result-returning
 *    functions whose value must not be discarded; catches the
 *    expression-statement pattern even in code paths the compiler's
 *    [[nodiscard]] does not reach (uninstantiated templates).
 *  - lint-store-raw-io: no raw file I/O (fopen/fwrite/FILE or the
 *    std fstream family) in store/ outside store/record_log — every
 *    byte of a store file must pass through the framed, CRC-guarded
 *    record writer, or crash-safety silently evaporates.
 *  - lint-fabric-process: no fork/vfork/exec-family/kill/waitpid/
 *    posix_spawn outside src/fabric — the sweep fabric's coordinator
 *    owns every child process; a stray fork elsewhere duplicates open
 *    record-log buffers, and stray signaling races the fabric's
 *    lease bookkeeping.
 *  - lint-trace-raw-mmap: no mmap/munmap/madvise/mremap/pread/pwrite
 *    outside sim/trace_columnar — the columnar loader is the single
 *    lifetime authority for mapped trace bytes, and every TraceView's
 *    validity contract depends on that ownership staying in one TU.
 *
 * Findings are keyed by file:line relative to the lint root, so the
 * baseline file stays stable across checkouts.
 */

#ifndef SADAPT_ANALYSIS_LINT_HH
#define SADAPT_ANALYSIS_LINT_HH

#include <string>
#include <vector>

#include "analysis/finding.hh"

namespace sadapt::analysis {

/** Lint one source buffer; `rel_path` scopes path-dependent rules. */
Report lintSource(const std::string &source,
                  const std::string &rel_path);

/** Lint one file on disk, reported relative to `root`. */
Report lintFile(const std::string &path, const std::string &root);

/**
 * Recursively lint every .cc/.hh file under `dir`, reporting paths
 * relative to `root` (pass root == dir to lint a whole tree).
 */
Report lintTree(const std::string &dir, const std::string &root);

} // namespace sadapt::analysis

#endif // SADAPT_ANALYSIS_LINT_HH
