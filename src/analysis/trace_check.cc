#include "analysis/trace_check.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "sim/trace_columnar.hh"
#include "sim/transmuter.hh"

namespace sadapt::analysis {

namespace {

/**
 * Check one op stream's addresses and collect its phase-marker
 * sequence. Address findings are aggregated per stream (a trace can
 * hold millions of ops) and report the first offending op.
 */
void
checkStream(const std::vector<TraceOp> &ops, const std::string &core,
            const TraceText &tt, const std::string &name,
            std::vector<Addr> &phase_seq, Report &report)
{
    std::uint64_t bad_mem = 0, bad_spm = 0;
    std::uint64_t first_bad_mem = 0, first_bad_spm = 0;
    Addr first_mem_addr = 0, first_spm_addr = 0;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const TraceOp &op = ops[i];
        if (op.kind == OpKind::Phase) {
            phase_seq.push_back(op.addr);
            continue;
        }
        if (isMemKind(op.kind) && tt.footprint > 0 &&
            op.addr >= tt.footprint) {
            if (bad_mem++ == 0) {
                first_bad_mem = i;
                first_mem_addr = op.addr;
            }
        }
        if ((op.kind == OpKind::SpmLoad ||
             op.kind == OpKind::SpmStore) &&
            op.addr >= spmBankBytes) {
            if (bad_spm++ == 0) {
                first_bad_spm = i;
                first_spm_addr = op.addr;
            }
        }
    }
    if (bad_mem > 0) {
        report.add("trace-addr-range", name, 0, Severity::Error,
                   str(core, ": ", bad_mem, " memory op(s) outside "
                       "the declared footprint of ", tt.footprint,
                       " bytes (first: op ", first_bad_mem,
                       ", addr ", first_mem_addr, ")"));
    }
    if (bad_spm > 0) {
        report.add("trace-spm-range", name, 0, Severity::Error,
                   str(core, ": ", bad_spm, " scratchpad op(s) "
                       "outside the ", spmBankBytes,
                       "-byte SPM bank (first: op ", first_bad_spm,
                       ", addr ", first_spm_addr, ")"));
    }
}

} // namespace

Report
checkTrace(const TraceText &tt, const std::string &name)
{
    Report report;
    const Trace &trace = tt.trace;
    const SystemShape &shape = trace.shape();

    if (trace.totalOps() == 0) {
        report.add("trace-empty", name, 0, Severity::Warning,
                   "trace contains no operations");
    }

    // Per-stream address checks + phase sequences. Every core must
    // see the same barrier sequence: each phase id exactly once, in
    // ascending order (beginPhase() semantics).
    std::vector<std::vector<Addr>> sequences;
    for (std::uint32_t g = 0; g < shape.numGpes(); ++g) {
        sequences.emplace_back();
        checkStream(trace.gpeStream(g), str("gpe ", g), tt, name,
                    sequences.back(), report);
    }
    for (std::uint32_t t = 0; t < shape.tiles; ++t) {
        sequences.emplace_back();
        checkStream(trace.lcpStream(t), str("lcp ", t), tt, name,
                    sequences.back(), report);
    }

    const std::size_t num_phases = trace.phaseNames().size();
    std::vector<Addr> expected(num_phases);
    for (std::size_t i = 0; i < num_phases; ++i)
        expected[i] = i;
    for (std::size_t s = 0; s < sequences.size(); ++s) {
        if (sequences[s] != expected) {
            const std::string core = s < shape.numGpes()
                ? str("gpe ", s)
                : str("lcp ", s - shape.numGpes());
            report.add(
                "trace-phase-consistency", name, 0, Severity::Error,
                str(core, " sees ", sequences[s].size(),
                    " phase marker(s); every core must see the ",
                    num_phases,
                    " declared phases exactly once, in order"));
        }
    }

    // Epoch accounting: the replay engine closes an epoch every
    // epochFpOps * numGpes FP-ops and flushes a trailing partial
    // epoch, so the epoch count is derivable from the FP-op total.
    if (tt.epochFpOps > 0 && tt.declaredEpochs > 0) {
        const auto flops =
            static_cast<std::uint64_t>(trace.totalFlops());
        const std::uint64_t target = tt.epochFpOps * shape.numGpes();
        const std::uint64_t expected_epochs =
            std::max<std::uint64_t>(1, (flops + target - 1) / target);
        if (expected_epochs != tt.declaredEpochs) {
            report.add(
                "trace-epoch-count", name, 0, Severity::Error,
                str("header declares ", tt.declaredEpochs,
                    " epoch(s) but ", flops, " FP-ops at ",
                    tt.epochFpOps, " FP-ops/GPE/epoch over ",
                    shape.numGpes(), " GPEs give ", expected_epochs));
        }
    }

    report.sort();
    return report;
}

Report
checkTraceFile(const std::string &path)
{
    if (traceFileIsColumnar(path)) {
        // The columnar loader is the framing validator: header magic
        // and version, every section CRC, canonical section order,
        // column-length agreement, op-kind validity and torn tails
        // all surface here as recoverable errors.
        auto loaded = readTraceColumnarFile(path);
        if (!loaded) {
            Report report;
            report.add("trace-columnar-framing", path, 0,
                       Severity::Error, loaded.message());
            return report;
        }
        const ColumnarTrace &ct = loaded.value();
        const TraceText tt{ct.toTrace(), ct.footprint(),
                           ct.epochFpOps(), ct.declaredEpochs()};
        return checkTrace(tt, path);
    }
    auto parsed = readTraceTextFile(path);
    if (!parsed) {
        Report report;
        report.add("trace-parse", path, 0, Severity::Error,
                   parsed.message());
        return report;
    }
    return checkTrace(parsed.value(), path);
}

} // namespace sadapt::analysis
