/**
 * @file
 * Validator for fabric lease-log files (store/lease_record.hh).
 *
 * A lease log is the only cross-process channel of the sweep fabric,
 * so a malformed one can stall a phase (a claim nobody made), redo
 * work (a Complete nobody can trust) or skip cells (a phantom
 * Quarantine). The checker is strictly read-only and reports:
 *
 *   lease-io         unreadable file
 *   lease-magic      missing/foreign file header
 *   lease-version    unsupported container or lease schema version
 *   lease-crc        CRC-mismatch record frames (skipped at run time)
 *   lease-torn-tail  incomplete bytes after the last intact frame
 *                    (warning: a crash mid-append leaves this by
 *                    design; the scan recovers it)
 *   lease-key        undecodable payloads
 *   lease-salt       records keyed by a different simulator salt
 *                    (warning: ignored at run time)
 *   lease-order      single-writer discipline violations — sequence
 *                    numbers not strictly increasing, ticks going
 *                    backwards, more than one writer id in one file,
 *                    or a Renew/Release/Complete with no Claim open
 *                    on that cell (the heartbeat sentinel is exempt:
 *                    idle Renews and the graceful-goodbye Release
 *                    pair with no Claim)
 */

#ifndef SADAPT_ANALYSIS_LEASE_CHECK_HH
#define SADAPT_ANALYSIS_LEASE_CHECK_HH

#include <cstdint>
#include <string>

#include "analysis/finding.hh"

namespace sadapt::analysis {

/**
 * Read and validate one lease-log file. Salt mismatches are only
 * reported when `expected_salt` is non-zero.
 */
Report checkLeaseFile(const std::string &path,
                      std::uint64_t expected_salt = 0);

} // namespace sadapt::analysis

#endif // SADAPT_ANALYSIS_LEASE_CHECK_HH
