#include "analysis/spec_check.hh"

#include <fstream>

#include "common/logging.hh"
#include "sim/config.hh"
#include "sim/faults.hh"

namespace sadapt::analysis {

Report
checkConfigSpec(const std::string &spec, const std::string &name,
                std::uint64_t line)
{
    Report report;
    auto parsed = parseConfig(spec);
    if (!parsed) {
        report.add("config-parse", name, line, Severity::Error,
                   str("'", spec, "': ", parsed.message()));
        return report;
    }
    const std::string round = parsed.value().toSpec();
    auto reparsed = parseConfig(round);
    if (!reparsed) {
        report.add("config-roundtrip", name, line, Severity::Error,
                   str("serialized form '", round,
                       "' fails to re-parse: ", reparsed.message()));
    } else if (!(reparsed.value() == parsed.value())) {
        report.add("config-roundtrip", name, line, Severity::Error,
                   str("'", spec, "' round-trips to a different "
                       "configuration ('", round, "')"));
    }
    return report;
}

Report
checkFaultSpec(const std::string &spec, const std::string &name,
               std::uint64_t line)
{
    Report report;
    auto parsed = FaultSpec::parse(spec);
    if (!parsed) {
        report.add("faults-parse", name, line, Severity::Error,
                   str("'", spec, "': ", parsed.message()));
        return report;
    }
    const std::string round = parsed.value().toString();
    auto reparsed = FaultSpec::parse(round);
    if (!reparsed) {
        report.add("faults-roundtrip", name, line, Severity::Error,
                   str("serialized form '", round,
                       "' fails to re-parse: ", reparsed.message()));
        return report;
    }
    const FaultSpec &a = parsed.value();
    const FaultSpec &b = reparsed.value();
    const bool same = a.dropRate == b.dropRate &&
        a.corruptRate == b.corruptRate &&
        a.delayRate == b.delayRate &&
        a.reconfigFailRate == b.reconfigFailRate &&
        a.maxDelayEpochs == b.maxDelayEpochs && a.seed == b.seed;
    if (!same) {
        report.add("faults-roundtrip", name, line, Severity::Error,
                   str("'", spec, "' round-trips to a different "
                       "fault spec ('", round, "')"));
    }
    return report;
}

Report
checkSpecFile(const std::string &path)
{
    Report report;
    std::ifstream in(path);
    if (!in) {
        report.add("spec-io", path, 0, Severity::Error,
                   "cannot open spec file");
        return report;
    }
    std::string line;
    std::uint64_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto start = line.find_first_not_of(" \t\r");
        if (start == std::string::npos || line[start] == '#')
            continue;
        const auto end = line.find_last_not_of(" \t\r");
        const std::string entry = line.substr(start, end - start + 1);
        auto strip = [](std::string s) {
            const auto p = s.find_first_not_of(" \t");
            return p == std::string::npos ? std::string() : s.substr(p);
        };
        if (entry.rfind("config:", 0) == 0) {
            report.merge(checkConfigSpec(strip(entry.substr(7)), path,
                                         lineno));
        } else if (entry.rfind("faults:", 0) == 0) {
            report.merge(checkFaultSpec(strip(entry.substr(7)), path,
                                        lineno));
        } else {
            report.add("spec-syntax", path, lineno, Severity::Error,
                       "expected 'config: <spec>' or "
                       "'faults: <spec>'");
        }
    }
    report.sort();
    return report;
}

Report
checkConfigSpaceInvariants()
{
    Report report;
    for (const MemType type : {MemType::Cache, MemType::Spm}) {
        const ConfigSpace space(type);
        const std::string label =
            type == MemType::Cache ? "cache" : "spm";
        for (std::uint32_t code = 0; code < space.size(); ++code) {
            const HwConfig cfg = space.decode(code);
            if (cfg.encode() != code) {
                report.add(
                    "config-encode", str("<config-space/", label, ">"),
                    0, Severity::Error,
                    str("decode(", code, ").encode() == ",
                        cfg.encode()));
                break; // one witness per space is enough
            }
            auto round = parseConfig(cfg.toSpec());
            if (!round || !(round.value() == cfg)) {
                report.add(
                    "config-roundtrip",
                    str("<config-space/", label, ">"), 0,
                    Severity::Error,
                    str("config ", code, " ('", cfg.toSpec(),
                        "') does not survive toSpec/parseConfig"));
                break;
            }
        }
    }
    for (const char *preset : {"baseline", "bestavg", "max"}) {
        if (!parseConfig(preset)) {
            report.add("config-preset", "<presets>", 0,
                       Severity::Error,
                       str("preset '", preset, "' fails to parse"));
        }
    }
    return report;
}

} // namespace sadapt::analysis
