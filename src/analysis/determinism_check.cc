#include "analysis/determinism_check.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "analysis/symbols.hh"
#include "common/logging.hh"

namespace sadapt::analysis {

namespace {

/**
 * Deterministic-output sinks reached through a member or qualified
 * call: writing any of these bakes the current value into an
 * artifact the determinism contract covers. Method names like `add`
 * or `write` are too common to trust alone, so each sink carries the
 * sink class (matched against a written qualifier) and receiver-name
 * hints (matched against the call's receiver identifier).
 */
struct MemberSink
{
    std::string label;  //!< Class::method reported in findings
    std::string klass;  //!< sink class, matched inside c.qual
    std::vector<std::string> recvHints;
};

const std::map<std::string, MemberSink> &
memberSinks()
{
    static const std::map<std::string, MemberSink> sinks = {
        {"emit",
         {"RunObserver::emit", "RunObserver", {"o", "obs", "observer"}}},
        {"put",
         {"EpochStore::put", "EpochStore",
          {"store", "shard", "db", "main"}}},
        {"putCell",
         {"EpochStore::putCell", "EpochStore",
          {"store", "shard", "db", "main"}}},
        {"write",
         {"JournalWriter::write", "JournalWriter",
          {"writer", "journal"}}},
        {"writeText",
         {"MetricRegistry::writeText", "MetricRegistry",
          {"reg", "registry", "metric"}}},
        {"noteSweep",
         {"BenchReport::noteSweep", "BenchReport",
          {"report", "bench"}}},
        {"noteFabric",
         {"BenchReport::noteFabric", "BenchReport",
          {"report", "bench"}}},
        {"add",
         {"BenchReport::add", "BenchReport", {"report", "bench"}}},
        {"append",
         {"RecordLog::append", "RecordLog", {"log", "lease"}}},
    };
    return sinks;
}

/** Free-function sinks, matched by unqualified name. */
const std::set<std::string> &
freeSinks()
{
    static const std::set<std::string> sinks = {
        "writeMetricsText",
        "writeBenchJson",
        "writeObserverOutputs",
    };
    return sinks;
}

/**
 * True when the receiver identifier suggests the sink object: an
 * exact match for short hints, a substring match for descriptive
 * ones ("epochStore" matches "store", "obsV" matches "obs").
 */
bool
recvMatchesHint(const std::string &recv, const MemberSink &sink)
{
    std::string r = recv;
    std::transform(r.begin(), r.end(), r.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    for (const std::string &h : sink.recvHints)
        if (h.size() < 3 ? r == h : r.find(h) != std::string::npos)
            return true;
    return false;
}

/** Sink label for a call site, or empty when it is not a sink. */
std::string
sinkLabel(const CallSite &c)
{
    if (freeSinks().contains(c.name))
        return c.name;
    auto it = memberSinks().find(c.name);
    if (it == memberSinks().end())
        return {};
    // Method names need corroboration: a bare `put(x)` is some local
    // helper, `cache.add(x)` is someone else's add — only a receiver
    // that names the sink object (`store.put`) or a written qualifier
    // naming the sink class (`EpochStore::put`) counts.
    if (!c.qual.empty() &&
        c.qual.find(it->second.klass) != std::string::npos)
        return it->second.label;
    if (c.member && recvMatchesHint(c.recv, it->second))
        return it->second.label;
    return {};
}

/** The lint rule an allowance must name to permit a taint kind. */
std::string
kindRule(TaintKind k)
{
    switch (k) {
      case TaintKind::WallClock: return "lint-wallclock";
      case TaintKind::MutableGlobal: return "lint-mutable-global";
      case TaintKind::UnorderedIter: return "lint-unordered-iter";
      case TaintKind::PointerOrder: return "lint-pointer-order";
      case TaintKind::RawRandom: return "lint-banned-call";
      case TaintKind::ThreadId: return {};
    }
    panic("bad TaintKind");
}

/**
 * True when `pathPrefix` matches `rel_path` anchored at a path
 * component boundary: at the start of the path or right after a '/'.
 * A bare substring match would let "obs/prof" silence rules in any
 * file whose path merely contains it (e.g. "myobs/profiler_x.cc").
 */
bool
prefixAtComponent(const std::string &rel_path,
                  const std::string &pathPrefix)
{
    for (std::size_t pos = 0;;) {
        if (rel_path.compare(pos, pathPrefix.size(), pathPrefix) == 0)
            return true;
        pos = rel_path.find('/', pos);
        if (pos == std::string::npos)
            return false;
        ++pos;
    }
}

/**
 * True for files inside the serve layer: a path component literally
 * named "serve". The trailing slash in the probe keeps neighbours
 * like "server/" or "serve_utils.cc" from matching.
 */
bool
underServeDir(const std::string &rel_path)
{
    return prefixAtComponent(rel_path, "serve/");
}

bool
allowed(const std::string &rule, const std::string &rel_path)
{
    if (rule.empty())
        return false;
    for (const RuleAllowance &a : determinismAllowances())
        if (a.rule == rule &&
            prefixAtComponent(rel_path, a.pathPrefix))
            return true;
    return false;
}

/**
 * Canonicalize-then-sort: an explicit sort AFTER the loop body, of a
 * container the body touched, restores a deterministic order before
 * anything can sink it. A sort inside the body, or of an unrelated
 * container, defuses nothing.
 */
bool
sortedAfterLoop(const FunctionDef &f, const UnorderedLoop &loop)
{
    for (const CallSite &c : f.calls) {
        if (c.name != "sort" && c.name != "stable_sort")
            continue;
        if (c.line <= loop.endLine)
            continue;
        for (const std::string &a : c.argIdents)
            if (std::binary_search(loop.bodyIdents.begin(),
                                   loop.bodyIdents.end(), a))
                return true;
    }
    return false;
}

/** How a taint kind arrived at a function. */
struct TaintOrigin
{
    bool direct = false;
    SourceMark mark;              //!< when direct
    std::size_t via = SIZE_MAX;   //!< callee index when not direct
    std::uint64_t edgeLine = 0;   //!< line of the call to `via`
};

/** How a sink is reached from a function. */
struct SinkPath
{
    std::size_t via = SIZE_MAX; //!< callee index; SIZE_MAX = direct
};

} // namespace

const std::vector<RuleAllowance> &
determinismAllowances()
{
    static const std::vector<RuleAllowance> table = {
        {"lint-wallclock", "obs/prof",
         "host profiling timers behind SADAPT_PROF; results go to "
         "stderr diagnostics, never into deterministic artifacts"},
        {"lint-mutable-global", "obs/prof",
         "process-wide profiling accumulator behind SADAPT_PROF; "
         "diagnostics only"},
        {"lint-wallclock", "fabric/lease_log",
         "lease heartbeat ticks are per-run crash-detection scratch; "
         "the merged store is rebuilt in canonical order (DESIGN "
         "S11)"},
        {"lint-mutable-global", "fabric/fabric",
         "volatile sig_atomic_t stop flag written by worker signal "
         "handlers; a stopped worker's work is redone and the "
         "merged store is rebuilt in canonical order (DESIGN S11)"},
        {"lint-mutable-global", "common/logging",
         "process-wide log-level cache; stderr diagnostics only, "
         "never a deterministic artifact"},
        {"lint-banned-call", "common/rng",
         "the one home of randomness; every stream is seeded from "
         "the run config so draws are reproducible"},
    };
    return table;
}

Report
checkDeterminism(
    const std::vector<std::pair<std::string, std::string>> &files)
{
    Report report;

    std::vector<std::pair<std::string, std::string>> sorted = files;
    std::sort(sorted.begin(), sorted.end());

    Program prog;
    for (const auto &[rel, content] : sorted)
        prog.addTu(parseTu(content, rel));
    prog.link();

    // ---- symbol-aware lint rules ---------------------------------

    for (const TuSymbols &tu : prog.tus()) {
        if (!allowed("lint-wallclock", tu.file)) {
            for (const RuleSite &s : tu.wallclockSites)
                report.add(
                    "lint-wallclock", tu.file, s.line,
                    Severity::Error,
                    str("wall-clock read (", s.detail,
                        "): use the simulated clock, or add a scoped "
                        "allowance with a justification"));
        }
        if (!allowed("lint-pointer-order", tu.file)) {
            for (const RuleSite &s : tu.pointerOrderSites)
                report.add(
                    "lint-pointer-order", tu.file, s.line,
                    Severity::Error,
                    str(s.detail, ": key or sort by a stable id "
                                  "instead of an address"));
        }
    }

    for (const GlobalVar &g : prog.globals()) {
        if (g.isConst)
            continue;
        // The serve layer gets the stricter, separately-named rule:
        // a mutable global there is shared across tenant sessions,
        // which breaks session isolation outright.
        if (underServeDir(g.file)) {
            if (allowed("lint-serve-session-state", g.file))
                continue;
            report.add(
                "lint-serve-session-state", g.file, g.line,
                Severity::Error,
                str("mutable ", g.storage, " state '", g.name,
                    "' in the serve layer: sessions may share the "
                    "store/pool/registry only via handles injected "
                    "through ServeOptions (DESIGN S15)"));
            continue;
        }
        if (allowed("lint-mutable-global", g.file))
            continue;
        report.add(
            "lint-mutable-global", g.file, g.line, Severity::Error,
            str("mutable ", g.storage, " state '", g.name,
                "': thread the value through explicit parameters, "
                "or add a scoped allowance with a justification"));
    }

    const auto &fns = prog.functions();
    const std::size_t n = fns.size();

    for (const FunctionDef &f : fns) {
        if (allowed("lint-unordered-iter", f.file))
            continue;
        for (const UnorderedLoop &loop : f.unorderedLoops) {
            bool sinky = false;
            std::string sink;
            for (const CallSite &c : loop.bodyCalls) {
                sink = sinkLabel(c);
                if (!sink.empty()) {
                    sinky = true;
                    break;
                }
            }
            if (!sinky && !loop.accumulatesFloat)
                continue;
            // Collecting into a container and sorting it afterwards
            // is fine — see sortedAfterLoop().
            if (sortedAfterLoop(f, loop))
                continue;
            report.add(
                "lint-unordered-iter", f.file, loop.line,
                Severity::Error,
                str("iteration over unordered container '", loop.var,
                    "' ",
                    sinky ? str("writes to sink ", sink)
                          : std::string(
                                "accumulates floating-point values"),
                    " in hash order: iterate a sorted view or sort "
                    "before emitting"));
        }
    }

    // ---- cross-TU taint pass -------------------------------------

    // Seed taint from source marks, minus allowance-covered sites.
    std::vector<std::map<TaintKind, TaintOrigin>> taint(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (const SourceMark &m : fns[i].sources) {
            if (allowed(kindRule(m.kind), fns[i].file) ||
                allowed("det-taint-" + taintKindSlug(m.kind),
                        fns[i].file))
                continue;
            // Canonicalize-then-sort also defuses the taint seed,
            // under the same conditions as the lint rule.
            if (m.kind == TaintKind::UnorderedIter) {
                bool defused = false;
                for (const UnorderedLoop &loop :
                     fns[i].unorderedLoops)
                    if (loop.line == m.line &&
                        sortedAfterLoop(fns[i], loop))
                        defused = true;
                if (defused)
                    continue;
            }
            if (!taint[i].contains(m.kind))
                taint[i][m.kind] =
                    TaintOrigin{true, m, SIZE_MAX, m.line};
        }
    }

    // Junction line of an edge, as resolved during Program::link();
    // a by-name re-derivation here could pick the wrong call site
    // when a function calls two same-named callees.
    auto edgeLine = [&](std::size_t i, std::size_t c) {
        return prog.edgeLine(i, c);
    };

    // Callee→caller propagation to a fixed point. Deterministic:
    // functions are visited in index order and callee lists are
    // sorted, and a kind is only recorded once per function.
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t c : prog.callees(i)) {
                for (const auto &[kind, origin] : taint[c]) {
                    if (taint[i].contains(kind))
                        continue;
                    taint[i][kind] = TaintOrigin{
                        false, {}, c, edgeLine(i, c)};
                    changed = true;
                }
            }
        }
    }

    // Direct sink calls per function, in line order.
    std::vector<std::vector<std::pair<std::string, std::uint64_t>>>
        directSinks(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (const CallSite &c : fns[i].calls) {
            const std::string label = sinkLabel(c);
            if (!label.empty())
                directSinks[i].push_back({label, c.line});
        }
        std::sort(directSinks[i].begin(), directSinks[i].end(),
                  [](const auto &a, const auto &b) {
                      return a.second < b.second;
                  });
    }

    // Sink reachability, also callee→caller to a fixed point.
    std::vector<std::optional<SinkPath>> sinkReach(n);
    for (std::size_t i = 0; i < n; ++i)
        if (!directSinks[i].empty())
            sinkReach[i] = SinkPath{SIZE_MAX};
    changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 0; i < n; ++i) {
            if (sinkReach[i])
                continue;
            for (std::size_t c : prog.callees(i)) {
                if (sinkReach[c]) {
                    sinkReach[i] = SinkPath{c};
                    changed = true;
                    break;
                }
            }
        }
    }

    // Walk a taint origin back to its direct source mark, collecting
    // the function path origin→...→junction.
    auto sourceChain = [&](std::size_t junction, TaintKind kind) {
        std::vector<std::size_t> path{junction};
        std::size_t cur = junction;
        while (!taint[cur].at(kind).direct)
            path.push_back(cur = taint[cur].at(kind).via);
        std::reverse(path.begin(), path.end());
        return path;
    };

    // Walk a sink path down to the function with the direct call;
    // returns (intermediate function indices, sink label).
    auto sinkChain = [&](std::size_t from) {
        std::vector<std::size_t> path;
        std::size_t cur = from;
        while (directSinks[cur].empty()) {
            cur = sinkReach[cur]->via;
            path.push_back(cur);
        }
        return std::pair{path, directSinks[cur].front().first};
    };

    // Junction findings: a tainted input meeting a sink output
    // through different edges is a new flow; the same callee on both
    // sides was already reported at (or below) that callee.
    std::set<std::string> emitted;
    for (std::size_t i = 0; i < n; ++i) {
        if (taint[i].empty())
            continue;

        // Outputs: direct sink calls, then sink-reaching callees.
        std::vector<std::pair<std::size_t, std::string>> outputs;
        if (!directSinks[i].empty())
            outputs.push_back({SIZE_MAX, directSinks[i].front().first});
        for (std::size_t c : prog.callees(i))
            if (sinkReach[c])
                outputs.push_back({c, {}});

        for (const auto &[kind, origin] : taint[i]) {
            for (const auto &[outVia, outLabel] : outputs) {
                if (!origin.direct && outVia != SIZE_MAX &&
                    origin.via == outVia)
                    continue; // same edge: reported below already

                // Build the chain: source path up to here, then the
                // sink path down, then the sink itself.
                std::vector<std::string> chain;
                for (std::size_t fi : sourceChain(i, kind))
                    chain.push_back(fns[fi].qualified);
                std::string label;
                if (outVia == SIZE_MAX) {
                    label = outLabel;
                } else {
                    auto [mids, l] = sinkChain(outVia);
                    chain.push_back(fns[outVia].qualified);
                    for (std::size_t fi : mids)
                        chain.push_back(fns[fi].qualified);
                    label = l;
                }
                chain.push_back(label);

                // Origin detail: the direct mark at the chain head.
                std::size_t head = i;
                while (!taint[head].at(kind).direct)
                    head = taint[head].at(kind).via;
                const SourceMark &m = taint[head].at(kind).mark;

                Finding f;
                f.checkId = "det-taint-" + taintKindSlug(kind);
                f.file = fns[i].file;
                f.line = origin.direct ? origin.mark.line
                                       : origin.edgeLine;
                f.severity = Severity::Error;
                f.message =
                    str("nondeterminism (", m.detail,
                        ") reaches deterministic output ", label);
                f.chain = chain;
                if (emitted.insert(f.key() + " " + label).second)
                    report.add(std::move(f));
            }
        }
    }

    report.sort();
    return report;
}

Report
checkDeterminismTree(const std::vector<std::string> &dirs,
                     const std::string &root)
{
    namespace fs = std::filesystem;
    Report report;
    std::vector<std::pair<std::string, std::string>> files;
    auto addFile = [&](const std::string &path) {
        std::ifstream in(path);
        if (!in) {
            report.add("lint-io", path, 0, Severity::Error,
                       "cannot open source file");
            return;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        std::string rel = path;
        const std::string prefix = root.empty() || root == "."
            ? std::string()
            : (root.back() == '/' ? root : root + "/");
        if (!prefix.empty() && rel.rfind(prefix, 0) == 0)
            rel = rel.substr(prefix.size());
        files.push_back({rel, buf.str()});
    };
    for (const std::string &dir : dirs) {
        std::error_code ec;
        if (!fs::is_directory(dir, ec)) {
            addFile(dir);
            continue;
        }
        for (fs::recursive_directory_iterator it(dir, ec), end;
             it != end && !ec; it.increment(ec)) {
            if (!it->is_regular_file())
                continue;
            const std::string ext =
                it->path().extension().string();
            if (ext != ".cc" && ext != ".hh" && ext != ".cpp" &&
                ext != ".h")
                continue;
            addFile(it->path().string());
        }
        if (ec) {
            report.add("lint-io", dir, 0, Severity::Error,
                       "cannot walk directory: " + ec.message());
            return report;
        }
    }
    report.merge(checkDeterminism(files));
    report.sort();
    return report;
}

} // namespace sadapt::analysis
