#include "analysis/lease_check.hh"

#include <fstream>
#include <map>

#include "common/logging.hh"
#include "store/lease_record.hh"
#include "store/record_log.hh"

namespace sadapt::analysis {

Report
checkLeaseFile(const std::string &path, std::uint64_t expected_salt)
{
    Report report;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        report.add("lease-io", path, 0, Severity::Error,
                   "cannot open lease file");
        return report;
    }

    // Pure scan, like the store validator: judging a file must never
    // repair it.
    const store::ScanResult scan = store::scanRecordStream(in);
    if (!scan.headerOk) {
        if (scan.formatVersion != 0 &&
            scan.formatVersion != store::recordLogFormatVersion) {
            report.add("lease-version", path, 0, Severity::Error,
                       str("container format version ",
                           scan.formatVersion, " (this build reads ",
                           store::recordLogFormatVersion, ")"));
        } else {
            report.add("lease-magic", path, 0, Severity::Error,
                       "not a sadapt record file (bad header magic)");
        }
        return report;
    }
    if (scan.corruptRecords > 0) {
        report.add("lease-crc", path, 0, Severity::Error,
                   str(scan.corruptRecords,
                       " record(s) fail their payload CRC (skipped "
                       "at run time)"));
    }
    if (scan.tornTailBytes > 0) {
        report.add("lease-torn-tail", path, scan.records.size() + 1,
                   Severity::Warning,
                   str(scan.tornTailBytes,
                       " trailing byte(s) after the last intact "
                       "frame (torn append; the scan recovers this "
                       "case by design)"));
    }

    // Single-writer discipline across the surviving records: one
    // writer id, strictly increasing seq, non-decreasing ticks, and
    // claim pairing per cell (the heartbeat sentinel is exempt, as
    // are Reclaim/Quarantine, which describe *other* writers' cells).
    bool haveWriter = false;
    std::uint32_t writer = 0;
    bool haveSeq = false;
    std::uint64_t lastSeq = 0;
    std::uint64_t lastTick = 0;
    std::map<std::uint32_t, bool> claimOpen;
    std::size_t ordinal = 0;
    for (const store::ScanRecord &rec : scan.records) {
        ++ordinal;
        const auto version = store::leasePayloadVersion(rec.payload);
        if (version && *version != store::leaseSchemaVersion) {
            report.add("lease-version", path, ordinal,
                       Severity::Error,
                       str("lease payload schema version ", *version,
                           " (this build reads ",
                           store::leaseSchemaVersion, ")"));
            continue;
        }
        const Result<store::LeaseRecord> decoded =
            store::decodeLeaseRecord(rec.payload);
        if (!decoded.isOk()) {
            report.add("lease-key", path, ordinal, Severity::Error,
                       decoded.message());
            continue;
        }
        const store::LeaseRecord &lease = decoded.value();
        if (expected_salt != 0 && lease.simSalt != expected_salt) {
            report.add("lease-salt", path, ordinal, Severity::Warning,
                       str("record keyed by simulator salt ",
                           lease.simSalt, ", not the expected ",
                           expected_salt, " (ignored at run time)"));
            continue;
        }
        if (!haveWriter) {
            haveWriter = true;
            writer = lease.workerId;
        } else if (lease.workerId != writer) {
            report.add("lease-order", path, ordinal, Severity::Error,
                       str("worker id ", lease.workerId,
                           " in a file owned by worker ", writer,
                           " (single-writer discipline violated)"));
            continue;
        }
        if (haveSeq && lease.seq <= lastSeq) {
            report.add("lease-order", path, ordinal, Severity::Error,
                       str("sequence number ", lease.seq,
                           " does not increase past ", lastSeq));
        }
        haveSeq = true;
        lastSeq = lease.seq;
        if (lease.tickMs < lastTick) {
            report.add("lease-order", path, ordinal, Severity::Error,
                       str("monotonic tick ", lease.tickMs,
                           " goes backwards past ", lastTick));
        }
        lastTick = std::max(lastTick, lease.tickMs);

        if (lease.configCode == store::leaseHeartbeatConfig)
            continue;
        bool &open = claimOpen[lease.configCode];
        switch (lease.op) {
        case store::LeaseOp::Claim:
            open = true;
            break;
        case store::LeaseOp::Renew:
        case store::LeaseOp::Release:
        case store::LeaseOp::Complete:
            if (!open) {
                report.add(
                    "lease-order", path, ordinal, Severity::Error,
                    str(store::leaseOpName(lease.op), " on cell ",
                        lease.configCode,
                        " with no Claim open in this file"));
            }
            if (lease.op != store::LeaseOp::Renew)
                open = false;
            break;
        case store::LeaseOp::Reclaim:
        case store::LeaseOp::Quarantine:
            // Coordinator bookkeeping about cells other writers hold;
            // no pairing requirement in the writer's own file.
            break;
        }
    }
    return report;
}

} // namespace sadapt::analysis
