/**
 * @file
 * Static verifier for decision-tree model files.
 *
 * The predictor ensemble is loaded from text files that nothing else
 * validates: DecisionTreeClassifier::load() dies on syntax errors but
 * accepts any semantically broken tree (dangling children, split
 * thresholds no telemetry feature can ever reach, leaf predictions
 * outside a parameter's legal values). This checker re-parses model
 * files tolerantly and verifies them against the reconfiguration
 * parameter space (sim/config) and the telemetry feature schema
 * (adapt/telemetry), reporting findings instead of dying.
 *
 * Invariants checked, per tree:
 *  - header feature count matches the telemetry schema
 *  - node records well-formed, node count matches the header
 *  - child indices in range, every node reachable from the root
 *    exactly once (no cycles, no shared or dead subtrees)
 *  - feature indices inside the schema
 *  - split thresholds finite and inside the feature's physical domain
 *  - branches reachable under interval propagation of feature domains
 *  - leaf predictions inside the target parameter's cardinality
 *    (ensemble files, where the tree-to-parameter mapping is known)
 *  - no split whose two subtrees are structurally identical
 */

#ifndef SADAPT_ANALYSIS_MODEL_CHECK_HH
#define SADAPT_ANALYSIS_MODEL_CHECK_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/finding.hh"

namespace sadapt::analysis {

/** Closed physical interval a telemetry feature can take. */
struct FeatureDomain
{
    double lo = 0.0;
    double hi = 1.0;
};

/**
 * Physical domain of every model input feature, in buildFeatures()
 * order: the six normalized configuration parameters (each [0, 1])
 * followed by the counters with their counterBounds() ranges.
 */
const std::vector<FeatureDomain> &telemetryFeatureDomains();

/**
 * Verify one model file. Accepts both ensemble files ("predictor N"
 * followed by N trees) and standalone tree files ("tree F N").
 */
Report checkModelFile(const std::string &path);

/** As checkModelFile on an open stream; `name` labels findings. */
Report checkModelStream(std::istream &in, const std::string &name);

} // namespace sadapt::analysis

#endif // SADAPT_ANALYSIS_MODEL_CHECK_HH
