/**
 * @file
 * The shared C++ token lexer under the sadapt-check source analyses.
 *
 * Both the token lint (analysis/lint) and the symbol-aware
 * determinism analyzer (analysis/symbols, analysis/determinism_check)
 * consume this stream, so its behaviour is pinned by committed
 * adversarial fixtures (tests/data/analysis/lexer/): raw string
 * literals with encoding prefixes, digit separators, user-defined
 * literals, and backslash-newline line splices.
 *
 * It is deliberately not a full phase-3 lexer — comments and string,
 * character and raw-string literals are *discarded* (they can never
 * trip a source rule), and preprocessor directives are lexed as
 * ordinary tokens — but what it does emit follows the standard:
 *
 *  - Phase-2 line splices (backslash-newline) are removed before
 *    tokenization, so an identifier split across lines is one token,
 *    a spliced // comment swallows its continuation line, and every
 *    token still reports its original source line.
 *  - pp-numbers include digit separators (1'000'000), exponent signs
 *    (1e-9, 0x1.8p3) and user-defined-literal suffixes (12.5_km), as
 *    one Number token.
 *  - Encoding prefixes (u8, u, U, L, and the raw forms R, u8R, uR,
 *    UR, LR) are part of the literal that follows them, not a stray
 *    identifier token; a literal's UDL suffix ("abc"_sv) is skipped
 *    with it.
 */

#ifndef SADAPT_ANALYSIS_LEXER_HH
#define SADAPT_ANALYSIS_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sadapt::analysis {

/** One lexed C++ token with its original (pre-splice) source line. */
struct Token
{
    enum class Kind
    {
        Ident,  //!< identifier or keyword
        Number, //!< pp-number (verbatim text, incl. UDL suffix)
        Punct,  //!< operator/punctuator, longest-match on pairs
    };

    Kind kind;
    std::string text;
    std::uint64_t line;
    /**
     * Line number after splice removal. Tokens of one (possibly
     * spliced) preprocessor directive share a logicalLine even when
     * their `line` values differ — the symbol parser uses this to
     * skip directives.
     */
    std::uint64_t logicalLine;
};

/**
 * Lex C++ source into a token stream with line numbers, discarding
 * comments and string/character literals. Never fails: unterminated
 * literals and comments extend to end-of-input.
 */
std::vector<Token> lex(const std::string &src);

/** True for pp-number text of floating-point type (UDL-suffix aware). */
bool isFloatLiteral(const std::string &text);

} // namespace sadapt::analysis

#endif // SADAPT_ANALYSIS_LEXER_HH
