/**
 * @file
 * The run-wide metrics registry of the observability layer.
 *
 * Components register counters, gauges and histograms by hierarchical
 * slash-separated name ("sim/l1/accesses", "adapt/policy/vetoed") and
 * keep the returned reference; updates are plain member stores with no
 * allocation, no locking and no wall-clock reads, so instrumented runs
 * stay deterministic. Histograms use fixed log2 buckets (bucket 0
 * holds the value 0, bucket i >= 1 holds [2^(i-1), 2^i)), sized for
 * cycle/byte counts without per-sample allocation.
 *
 * A registry snapshot (writeMetricsText) is sorted by name and prints
 * values exactly, so two identical runs produce byte-identical dumps.
 */

#ifndef SADAPT_OBS_METRICS_HH
#define SADAPT_OBS_METRICS_HH

#include <array>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hh"

namespace sadapt::obs {

/** The three instrument kinds of the registry. */
enum class MetricKind : std::uint8_t
{
    Counter,
    Gauge,
    Histogram,
};

/** Human-readable kind name ("counter", "gauge", "hist"). */
std::string metricKindName(MetricKind kind);

/** Monotone event count. */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { valueV += n; }
    std::uint64_t value() const { return valueV; }

  private:
    std::uint64_t valueV = 0;
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void set(double v) { valueV = v; }
    double value() const { return valueV; }

  private:
    double valueV = 0.0;
};

/**
 * Fixed log2-bucket histogram of non-negative integer samples.
 * Bucket 0 counts observations of 0; bucket i >= 1 counts
 * observations in [2^(i-1), 2^i). 65 buckets cover all of uint64.
 */
class Histogram
{
  public:
    static constexpr std::size_t numBuckets = 65;

    void
    observe(std::uint64_t v)
    {
        ++buckets[bucketOf(v)];
        ++countV;
        sumV += v;
    }

    /** Bucket index a value falls into. */
    static std::size_t bucketOf(std::uint64_t v);

    /** Inclusive lower edge of a bucket (0 for bucket 0). */
    static std::uint64_t bucketLo(std::size_t bucket);

    std::uint64_t count() const { return countV; }
    std::uint64_t sum() const { return sumV; }
    std::uint64_t bucketCount(std::size_t b) const { return buckets[b]; }

    /**
     * Deterministic quantile estimate (q in [0, 1], clamped). The
     * rank q*count is located in the cumulative bucket counts and
     * interpolated linearly inside the containing bucket's [lo, hi)
     * edge range, assuming samples spread uniformly within a bucket.
     * Bucket 0 holds only the value 0, so ranks landing there return
     * exactly 0. Returns 0 for an empty histogram. Pure arithmetic on
     * the bucket counts: snapshots stay bit-identical across runs.
     */
    double quantile(double q) const;

    /**
     * Accumulate data parsed back from a text snapshot: total count
     * and sum plus sparse (bucket, count) pairs. The dual of the
     * writeText() hist line, used when merging per-worker snapshot
     * shards whose live Histogram objects are gone.
     */
    void addParsed(
        std::uint64_t count, std::uint64_t sum,
        const std::vector<std::pair<std::size_t, std::uint64_t>>
            &bucket_counts);

    /** Bucket-wise accumulate another histogram into this one. */
    void
    merge(const Histogram &other)
    {
        for (std::size_t b = 0; b < numBuckets; ++b)
            buckets[b] += other.buckets[b];
        countV += other.countV;
        sumV += other.sumV;
    }

  private:
    std::array<std::uint64_t, numBuckets> buckets{};
    std::uint64_t countV = 0;
    std::uint64_t sumV = 0;
};

struct MetricSample;

/**
 * Owns every instrument of one run, keyed by hierarchical name.
 * Accessors register on first use and return the existing instrument
 * on repeat calls; requesting an existing name as a different kind is
 * a programming error (panic), since two components would silently
 * split one name otherwise. References stay valid for the registry's
 * lifetime.
 */
class MetricRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Kind of a registered name; nullopt when never registered. */
    std::optional<MetricKind> kindOf(const std::string &name) const;

    /**
     * Fold another registry into this one: counters add, histograms
     * add bucket-wise, gauges take the other registry's value
     * (last-write-wins, so merging shards in request order reproduces
     * a serial run's final value). Requesting an existing name as a
     * different kind panics, as with the accessors. Used by the
     * parallel sweep engine to commit per-worker metric shards at its
     * deterministic merge points (DESIGN.md section 9).
     */
    void merge(const MetricRegistry &other);

    /**
     * merge(), but from samples parsed out of a text snapshot
     * (readMetricsText): counters add, gauges take the sample's value,
     * histograms accumulate the sample's bucket counts. Merging worker
     * shards in canonical order reproduces the registry a single
     * serial run would have built (DESIGN.md section 12).
     */
    void mergeSamples(const std::vector<MetricSample> &samples);

    std::size_t size() const { return entries.size(); }

    /**
     * Deterministic text snapshot, sorted by name:
     *
     *   sadapt-metrics v1
     *   counter sim/l1/accesses 1234
     *   gauge adapt/watchdog/reference 0.93
     *   hist sim/epoch_cycles count 3 sum 70 buckets 4:1 5:2
     *   end
     */
    void writeText(std::ostream &out) const;

  private:
    struct Entry
    {
        std::string name;
        MetricKind kind;
        Counter counterV;
        Gauge gaugeV;
        Histogram histV;
    };

    Entry &entry(const std::string &name, MetricKind kind);

    std::deque<Entry> entries; //!< deque: stable instrument addresses
    std::map<std::string, Entry *> byName;
};

/** One metric parsed back from a text snapshot. */
struct MetricSample
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
    std::uint64_t counterValue = 0;                //!< Counter
    double gaugeValue = 0.0;                       //!< Gauge
    std::uint64_t histCount = 0, histSum = 0;      //!< Histogram
    bool histHasQuantiles = false; //!< p50/p90/p99 present on the line
    double histP50 = 0.0, histP90 = 0.0, histP99 = 0.0;
    std::vector<std::pair<std::size_t, std::uint64_t>> histBuckets;
};

/**
 * Parse a writeText() snapshot. Unknown versions, malformed lines and
 * a missing "end" terminator are recoverable errors.
 */
[[nodiscard]] Result<std::vector<MetricSample>>
readMetricsText(std::istream &in);

/** readMetricsText() from a file path. */
[[nodiscard]] Result<std::vector<MetricSample>>
readMetricsTextFile(const std::string &path);

} // namespace sadapt::obs

#endif // SADAPT_OBS_METRICS_HH
