#include "obs/report.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <ostream>
#include <string>
#include <string_view>

namespace sadapt::obs {

namespace {

/** Fixed short decimal for report tables (deterministic). */
std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

std::string
fieldText(const FieldValue &v)
{
    if (std::holds_alternative<std::int64_t>(v))
        return std::to_string(std::get<std::int64_t>(v));
    if (std::holds_alternative<double>(v))
        return num(std::get<double>(v));
    if (std::holds_alternative<bool>(v))
        return std::get<bool>(v) ? "true" : "false";
    return std::get<std::string>(v);
}

std::string
fieldOr(const JournalEvent &ev, std::string_view key,
        const std::string &fallback)
{
    const FieldValue *v = ev.field(key);
    return v != nullptr ? fieldText(*v) : fallback;
}

} // namespace

void
renderTimeline(const std::vector<JournalEvent> &events,
               std::ostream &out)
{
    out << "== decision timeline ==\n";
    bool any = false;
    for (const JournalEvent &ev : events) {
        if (ev.type == "run")
            continue;
        any = true;
        if (ev.type == "epoch") {
            out << "epoch " << ev.epoch << " t=" << num(ev.simTime)
                << "s cfg=" << fieldOr(ev, "cfg", "?")
                << " seconds=" << fieldOr(ev, "seconds", "?")
                << " metric=" << fieldOr(ev, "metric", "?") << '\n';
        } else if (ev.type == "prediction") {
            out << "  prediction:";
            for (const auto &[k, v] : ev.fields) {
                if (k != "cfg")
                    out << ' ' << k << '=' << fieldText(v);
            }
            out << '\n';
        } else if (ev.type == "policy") {
            out << "  policy: " << fieldOr(ev, "param", "?") << ' '
                << fieldOr(ev, "from", "?") << "->"
                << fieldOr(ev, "to", "?") << ' '
                << (ev.boolField("accepted").value_or(false)
                        ? "accepted"
                        : "vetoed")
                << " (cost " << fieldOr(ev, "cost_s", "?") << "s"
                << (ev.boolField("flush").value_or(false) ? ", flush"
                                                          : "")
                << ")\n";
        } else if (ev.type == "reconfig") {
            out << "  reconfig: " << fieldOr(ev, "from", "?")
                << " -> " << fieldOr(ev, "to", "?") << " (cost "
                << fieldOr(ev, "cost_s", "?") << "s, "
                << fieldOr(ev, "cost_j", "?") << "J)\n";
        } else if (ev.type == "guard") {
            out << "  guard: " << fieldOr(ev, "verdict", "?")
                << " (flagged " << fieldOr(ev, "flagged", "0")
                << ")\n";
        } else if (ev.type == "watchdog") {
            out << "  watchdog: " << fieldOr(ev, "from", "?")
                << " -> " << fieldOr(ev, "to", "?") << '\n';
        } else if (ev.type == "fault") {
            out << "  fault: " << fieldOr(ev, "kind", "?") << ' '
                << fieldOr(ev, "detail", "") << '\n';
        } else {
            out << "  " << ev.type << " (" << ev.path << ")\n";
        }
    }
    if (!any)
        out << "(no events)\n";
}

void
renderReconfigSummary(const std::vector<JournalEvent> &events,
                      std::ostream &out)
{
    struct ParamTally
    {
        std::uint64_t proposed = 0;
        std::uint64_t accepted = 0;
        std::uint64_t vetoed = 0;
    };
    std::map<std::string, ParamTally> per_param;
    std::uint64_t applied = 0;
    double applied_cost_s = 0.0, applied_cost_j = 0.0;
    for (const JournalEvent &ev : events) {
        if (ev.type == "policy") {
            ParamTally &t = per_param[fieldOr(ev, "param", "?")];
            ++t.proposed;
            if (ev.boolField("accepted").value_or(false))
                ++t.accepted;
            else
                ++t.vetoed;
        } else if (ev.type == "reconfig") {
            ++applied;
            applied_cost_s += ev.numField("cost_s").value_or(0.0);
            applied_cost_j += ev.numField("cost_j").value_or(0.0);
        }
    }

    out << "== reconfiguration summary ==\n";
    char line[128];
    std::snprintf(line, sizeof(line), "%-12s %9s %9s %9s\n", "param",
                  "proposed", "accepted", "vetoed");
    out << line;
    for (const auto &[param, t] : per_param) {
        std::snprintf(line, sizeof(line), "%-12s %9llu %9llu %9llu\n",
                      param.c_str(),
                      static_cast<unsigned long long>(t.proposed),
                      static_cast<unsigned long long>(t.accepted),
                      static_cast<unsigned long long>(t.vetoed));
        out << line;
    }
    if (per_param.empty())
        out << "(no policy decisions)\n";
    out << "applied reconfigurations: " << applied << " (cost "
        << num(applied_cost_s) << "s, " << num(applied_cost_j)
        << "J)\n";
}

void
renderMetricRollups(const std::vector<MetricSample> &metrics,
                    std::ostream &out)
{
    out << "== metrics ==\n";
    if (metrics.empty()) {
        out << "(no metrics)\n";
        return;
    }
    // Group by top-level path component; samples arrive name-sorted
    // from readMetricsText, so groups are contiguous.
    std::vector<MetricSample> sorted = metrics;
    std::sort(sorted.begin(), sorted.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name < b.name;
              });
    std::string group;
    for (const MetricSample &m : sorted) {
        const std::size_t slash = m.name.find('/');
        const std::string g = slash == std::string::npos
            ? std::string("(root)")
            : m.name.substr(0, slash);
        if (g != group) {
            group = g;
            out << "[" << group << "]\n";
        }
        out << "  " << m.name << " = ";
        switch (m.kind) {
          case MetricKind::Counter:
            out << m.counterValue;
            break;
          case MetricKind::Gauge:
            out << num(m.gaugeValue);
            break;
          case MetricKind::Histogram: {
            out << "count " << m.histCount << " sum " << m.histSum;
            if (m.histCount > 0)
                out << " mean "
                    << num(static_cast<double>(m.histSum) /
                           static_cast<double>(m.histCount));
            break;
          }
        }
        out << '\n';
    }
}

bool
renderStoreSection(const std::vector<JournalEvent> &events,
                   const std::vector<MetricSample> &metrics,
                   std::ostream &out)
{
    // Prefer the journal's cumulative store events (the CLI journals
    // them); fall back to store/ metric samples (benchmarks export
    // metrics only, to keep their journals store-independent).
    const JournalEvent *open_ev = nullptr;
    const JournalEvent *last_ev = nullptr;
    for (const JournalEvent &ev : events) {
        if (ev.type != "store")
            continue;
        last_ev = &ev;
        const FieldValue *op = ev.field("op");
        if (op != nullptr &&
            std::holds_alternative<std::string>(*op) &&
            std::get<std::string>(*op) == "open")
            open_ev = &ev;
    }

    std::map<std::string, const MetricSample *> store_metrics;
    for (const MetricSample &m : metrics) {
        if (m.name.rfind("store/", 0) == 0)
            store_metrics[m.name] = &m;
    }

    if (last_ev == nullptr && store_metrics.empty())
        return false;

    out << "== epoch store ==\n";
    if (last_ev != nullptr) {
        if (open_ev != nullptr) {
            out << "file: " << fieldOr(*open_ev, "file", "?") << " ("
                << fieldOr(*open_ev, "disk_results", "0")
                << " results / "
                << fieldOr(*open_ev, "disk_records", "0")
                << " records at open)\n";
            const auto recovered = [&](const char *key) {
                const FieldValue *v = open_ev->field(key);
                return v != nullptr &&
                       std::holds_alternative<std::int64_t>(*v) &&
                       std::get<std::int64_t>(*v) > 0;
            };
            if (recovered("stale_records") ||
                recovered("corrupt_records") ||
                recovered("torn_tail_bytes")) {
                out << "recovered: "
                    << fieldOr(*open_ev, "stale_records", "0")
                    << " stale, "
                    << fieldOr(*open_ev, "corrupt_records", "0")
                    << " corrupt record(s), "
                    << fieldOr(*open_ev, "torn_tail_bytes", "0")
                    << " torn tail byte(s)\n";
            }
        }
        if (last_ev != open_ev) {
            out << "traffic: " << fieldOr(*last_ev, "hits", "0")
                << " hits, " << fieldOr(*last_ev, "misses", "0")
                << " misses, "
                << fieldOr(*last_ev, "put_records", "0")
                << " record(s) written (now "
                << fieldOr(*last_ev, "disk_results", "0")
                << " results / "
                << fieldOr(*last_ev, "disk_records", "0")
                << " records on disk)\n";
        }
        return true;
    }

    const auto counter = [&](const char *name) -> std::uint64_t {
        const auto it = store_metrics.find(name);
        if (it == store_metrics.end())
            return 0;
        if (it->second->kind == MetricKind::Gauge)
            return static_cast<std::uint64_t>(
                it->second->gaugeValue);
        return it->second->counterValue;
    };
    out << "traffic: " << counter("store/hits") << " hits, "
        << counter("store/misses") << " misses, "
        << counter("store/put_records") << " record(s) written, "
        << counter("store/evictions") << " eviction(s), "
        << counter("store/served_cells") << " epoch cell(s) served\n";
    out << "on disk: " << counter("store/disk_results")
        << " results / " << counter("store/disk_records")
        << " records";
    if (counter("store/corrupt_records") > 0 ||
        counter("store/stale_records") > 0) {
        out << " (" << counter("store/corrupt_records")
            << " corrupt, " << counter("store/stale_records")
            << " stale skipped)";
    }
    out << '\n';
    return true;
}

void
renderReport(const std::vector<JournalEvent> &events,
             const std::vector<MetricSample> &metrics,
             std::ostream &out)
{
    out << "sadapt-report\n";
    for (const JournalEvent &ev : events) {
        if (ev.type != "run")
            continue;
        out << "run:";
        for (const auto &[k, v] : ev.fields)
            out << ' ' << k << '=' << fieldText(v);
        out << '\n';
    }
    out << "events: " << events.size() << "\n\n";
    renderTimeline(events, out);
    out << '\n';
    renderReconfigSummary(events, out);
    out << '\n';
    if (renderStoreSection(events, metrics, out))
        out << '\n';
    renderMetricRollups(metrics, out);
}

namespace {

void
appendTraceString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) >= 0x20)
            out += c;
    }
    out += '"';
}

} // namespace

void
writeChromeTrace(const std::vector<JournalEvent> &events,
                 std::ostream &out)
{
    // One virtual process, two tracks: epochs (tid 0) as duration
    // slices, control events (tid 1) as instants. Simulated seconds
    // map to trace microseconds.
    constexpr double us = 1e6;
    out << "{\"traceEvents\":[\n";
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
           "\"tid\":0,\"args\":{\"name\":\"sparseadapt\"}},\n";
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
           "\"tid\":0,\"args\":{\"name\":\"epochs\"}},\n";
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
           "\"tid\":1,\"args\":{\"name\":\"control\"}}";
    for (const JournalEvent &ev : events) {
        std::string line;
        if (ev.type == "epoch") {
            const double dur =
                ev.numField("seconds").value_or(0.0) * us;
            line += "{\"name\":";
            appendTraceString(line,
                              "epoch " + std::to_string(ev.epoch));
            line += ",\"cat\":\"epoch\",\"ph\":\"X\",\"ts\":";
            line += num(ev.simTime * us);
            line += ",\"dur\":";
            line += num(dur);
            line += ",\"pid\":1,\"tid\":0,\"args\":{\"cfg\":";
            appendTraceString(line, fieldOr(ev, "cfg", "?"));
            line += ",\"metric\":";
            appendTraceString(line, fieldOr(ev, "metric", "?"));
            line += "}}";
        } else if (ev.type == "reconfig" || ev.type == "watchdog" ||
                   ev.type == "fault") {
            line += "{\"name\":";
            if (ev.type == "reconfig") {
                appendTraceString(line, "reconfig");
            } else if (ev.type == "watchdog") {
                appendTraceString(line,
                                  "watchdog " +
                                      fieldOr(ev, "to", "?"));
            } else {
                appendTraceString(line,
                                  "fault " + fieldOr(ev, "kind", "?"));
            }
            line += ",\"cat\":";
            appendTraceString(line, ev.type);
            line += ",\"ph\":\"i\",\"s\":\"g\",\"ts\":";
            line += num(ev.simTime * us);
            line += ",\"pid\":1,\"tid\":1,\"args\":{\"epoch\":";
            line += std::to_string(ev.epoch);
            line += "}}";
        } else {
            continue;
        }
        out << ",\n" << line;
    }
    out << "\n]}\n";
}

} // namespace sadapt::obs
