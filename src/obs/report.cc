#include "obs/report.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <string_view>

namespace sadapt::obs {

namespace {

/** Fixed short decimal for report tables (deterministic). */
std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/** Shortest round-trip decimal for the JSON report (byte-stable). */
std::string
jsonNum(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) {
        for (int prec = 1; prec <= 16; ++prec) {
            char s[64];
            std::snprintf(s, sizeof(s), "%.*g", prec, v);
            std::sscanf(s, "%lf", &back);
            if (back == v)
                return s;
        }
    }
    return buf;
}

std::string
fieldText(const FieldValue &v)
{
    if (std::holds_alternative<std::int64_t>(v))
        return std::to_string(std::get<std::int64_t>(v));
    if (std::holds_alternative<double>(v))
        return num(std::get<double>(v));
    if (std::holds_alternative<bool>(v))
        return std::get<bool>(v) ? "true" : "false";
    return std::get<std::string>(v);
}

std::string
fieldOr(const JournalEvent &ev, std::string_view key,
        const std::string &fallback)
{
    const FieldValue *v = ev.field(key);
    return v != nullptr ? fieldText(*v) : fallback;
}

} // namespace

void
renderTimeline(const std::vector<JournalEvent> &events,
               std::ostream &out)
{
    out << "== decision timeline ==\n";
    bool any = false;
    for (const JournalEvent &ev : events) {
        if (ev.type == "run")
            continue;
        any = true;
        if (ev.type == "epoch") {
            out << "epoch " << ev.epoch << " t=" << num(ev.simTime)
                << "s cfg=" << fieldOr(ev, "cfg", "?")
                << " seconds=" << fieldOr(ev, "seconds", "?")
                << " metric=" << fieldOr(ev, "metric", "?") << '\n';
        } else if (ev.type == "prediction") {
            out << "  prediction:";
            for (const auto &[k, v] : ev.fields) {
                if (k != "cfg")
                    out << ' ' << k << '=' << fieldText(v);
            }
            out << '\n';
        } else if (ev.type == "policy") {
            out << "  policy: " << fieldOr(ev, "param", "?") << ' '
                << fieldOr(ev, "from", "?") << "->"
                << fieldOr(ev, "to", "?") << ' '
                << (ev.boolField("accepted").value_or(false)
                        ? "accepted"
                        : "vetoed")
                << " (cost " << fieldOr(ev, "cost_s", "?") << "s"
                << (ev.boolField("flush").value_or(false) ? ", flush"
                                                          : "")
                << ")\n";
        } else if (ev.type == "reconfig") {
            out << "  reconfig: " << fieldOr(ev, "from", "?")
                << " -> " << fieldOr(ev, "to", "?") << " (cost "
                << fieldOr(ev, "cost_s", "?") << "s, "
                << fieldOr(ev, "cost_j", "?") << "J)\n";
        } else if (ev.type == "guard") {
            out << "  guard: " << fieldOr(ev, "verdict", "?")
                << " (flagged " << fieldOr(ev, "flagged", "0")
                << ")\n";
        } else if (ev.type == "watchdog") {
            out << "  watchdog: " << fieldOr(ev, "from", "?")
                << " -> " << fieldOr(ev, "to", "?") << '\n';
        } else if (ev.type == "fault") {
            out << "  fault: " << fieldOr(ev, "kind", "?") << ' '
                << fieldOr(ev, "detail", "") << '\n';
        } else {
            out << "  " << ev.type << " (" << ev.path << ")\n";
        }
    }
    if (!any)
        out << "(no events)\n";
}

void
renderReconfigSummary(const std::vector<JournalEvent> &events,
                      std::ostream &out)
{
    struct ParamTally
    {
        std::uint64_t proposed = 0;
        std::uint64_t accepted = 0;
        std::uint64_t vetoed = 0;
    };
    std::map<std::string, ParamTally> per_param;
    std::uint64_t applied = 0;
    double applied_cost_s = 0.0, applied_cost_j = 0.0;
    for (const JournalEvent &ev : events) {
        if (ev.type == "policy") {
            ParamTally &t = per_param[fieldOr(ev, "param", "?")];
            ++t.proposed;
            if (ev.boolField("accepted").value_or(false))
                ++t.accepted;
            else
                ++t.vetoed;
        } else if (ev.type == "reconfig") {
            ++applied;
            applied_cost_s += ev.numField("cost_s").value_or(0.0);
            applied_cost_j += ev.numField("cost_j").value_or(0.0);
        }
    }

    out << "== reconfiguration summary ==\n";
    char line[128];
    std::snprintf(line, sizeof(line), "%-12s %9s %9s %9s\n", "param",
                  "proposed", "accepted", "vetoed");
    out << line;
    for (const auto &[param, t] : per_param) {
        std::snprintf(line, sizeof(line), "%-12s %9llu %9llu %9llu\n",
                      param.c_str(),
                      static_cast<unsigned long long>(t.proposed),
                      static_cast<unsigned long long>(t.accepted),
                      static_cast<unsigned long long>(t.vetoed));
        out << line;
    }
    if (per_param.empty())
        out << "(no policy decisions)\n";
    out << "applied reconfigurations: " << applied << " (cost "
        << num(applied_cost_s) << "s, " << num(applied_cost_j)
        << "J)\n";
}

void
renderMetricRollups(const std::vector<MetricSample> &metrics,
                    std::ostream &out)
{
    out << "== metrics ==\n";
    if (metrics.empty()) {
        out << "(no metrics)\n";
        return;
    }
    // Group by top-level path component; samples arrive name-sorted
    // from readMetricsText, so groups are contiguous.
    std::vector<MetricSample> sorted = metrics;
    std::sort(sorted.begin(), sorted.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name < b.name;
              });
    std::string group;
    for (const MetricSample &m : sorted) {
        const std::size_t slash = m.name.find('/');
        const std::string g = slash == std::string::npos
            ? std::string("(root)")
            : m.name.substr(0, slash);
        if (g != group) {
            group = g;
            out << "[" << group << "]\n";
        }
        out << "  " << m.name << " = ";
        switch (m.kind) {
          case MetricKind::Counter:
            out << m.counterValue;
            break;
          case MetricKind::Gauge:
            out << num(m.gaugeValue);
            break;
          case MetricKind::Histogram: {
            out << "count " << m.histCount << " sum " << m.histSum;
            if (m.histCount > 0)
                out << " mean "
                    << num(static_cast<double>(m.histSum) /
                           static_cast<double>(m.histCount));
            break;
          }
        }
        out << '\n';
    }
}

bool
renderStoreSection(const std::vector<JournalEvent> &events,
                   const std::vector<MetricSample> &metrics,
                   std::ostream &out)
{
    // Prefer the journal's cumulative store events (the CLI journals
    // them); fall back to store/ metric samples (benchmarks export
    // metrics only, to keep their journals store-independent).
    const JournalEvent *open_ev = nullptr;
    const JournalEvent *last_ev = nullptr;
    for (const JournalEvent &ev : events) {
        if (ev.type != "store")
            continue;
        last_ev = &ev;
        const FieldValue *op = ev.field("op");
        if (op != nullptr &&
            std::holds_alternative<std::string>(*op) &&
            std::get<std::string>(*op) == "open")
            open_ev = &ev;
    }

    std::map<std::string, const MetricSample *> store_metrics;
    for (const MetricSample &m : metrics) {
        if (m.name.rfind("store/", 0) == 0)
            store_metrics[m.name] = &m;
    }

    if (last_ev == nullptr && store_metrics.empty())
        return false;

    out << "== epoch store ==\n";
    if (last_ev != nullptr) {
        if (open_ev != nullptr) {
            out << "file: " << fieldOr(*open_ev, "file", "?") << " ("
                << fieldOr(*open_ev, "disk_results", "0")
                << " results / "
                << fieldOr(*open_ev, "disk_records", "0")
                << " records at open)\n";
            const auto recovered = [&](const char *key) {
                const FieldValue *v = open_ev->field(key);
                return v != nullptr &&
                       std::holds_alternative<std::int64_t>(*v) &&
                       std::get<std::int64_t>(*v) > 0;
            };
            if (recovered("stale_records") ||
                recovered("corrupt_records") ||
                recovered("torn_tail_bytes")) {
                out << "recovered: "
                    << fieldOr(*open_ev, "stale_records", "0")
                    << " stale, "
                    << fieldOr(*open_ev, "corrupt_records", "0")
                    << " corrupt record(s), "
                    << fieldOr(*open_ev, "torn_tail_bytes", "0")
                    << " torn tail byte(s)\n";
            }
        }
        if (last_ev != open_ev) {
            out << "traffic: " << fieldOr(*last_ev, "hits", "0")
                << " hits, " << fieldOr(*last_ev, "misses", "0")
                << " misses, "
                << fieldOr(*last_ev, "put_records", "0")
                << " record(s) written (now "
                << fieldOr(*last_ev, "disk_results", "0")
                << " results / "
                << fieldOr(*last_ev, "disk_records", "0")
                << " records on disk)\n";
        }
        return true;
    }

    const auto counter = [&](const char *name) -> std::uint64_t {
        const auto it = store_metrics.find(name);
        if (it == store_metrics.end())
            return 0;
        if (it->second->kind == MetricKind::Gauge)
            return static_cast<std::uint64_t>(
                it->second->gaugeValue);
        return it->second->counterValue;
    };
    out << "traffic: " << counter("store/hits") << " hits, "
        << counter("store/misses") << " misses, "
        << counter("store/put_records") << " record(s) written, "
        << counter("store/evictions") << " eviction(s), "
        << counter("store/served_cells") << " epoch cell(s) served\n";
    out << "on disk: " << counter("store/disk_results")
        << " results / " << counter("store/disk_records")
        << " records";
    if (counter("store/corrupt_records") > 0 ||
        counter("store/stale_records") > 0) {
        out << " (" << counter("store/corrupt_records")
            << " corrupt, " << counter("store/stale_records")
            << " stale skipped)";
    }
    out << '\n';
    return true;
}

namespace {

/**
 * Lease records in deterministic render order: by tick, then writer,
 * then the writer's own sequence number. Ticks come from one host's
 * monotonic clock, so ordering across writers is meaningful within
 * one fabric run.
 */
std::vector<const LeaseEntry *>
sortedLeases(const std::vector<LeaseEntry> &leases)
{
    std::vector<const LeaseEntry *> sorted;
    sorted.reserve(leases.size());
    for (const LeaseEntry &l : leases)
        sorted.push_back(&l);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const LeaseEntry *a, const LeaseEntry *b) {
                         if (a->tickMs != b->tickMs)
                             return a->tickMs < b->tickMs;
                         if (a->worker != b->worker)
                             return a->worker < b->worker;
                         return a->seq < b->seq;
                     });
    return sorted;
}

/** Per-worker roll-up accumulated from lease records. */
struct WorkerTally
{
    std::uint64_t claims = 0;
    std::uint64_t completes = 0;
    std::uint64_t releases = 0;
    std::uint64_t reclaims = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t heartbeats = 0; //!< renews + sentinel heartbeats
    std::uint64_t firstTick = ~std::uint64_t{0};
    std::uint64_t lastTick = 0;
    std::uint64_t busyMs = 0; //!< summed claim -> complete/release
    std::map<std::uint32_t, std::uint64_t> openClaims; //!< cell->tick
};

std::map<std::uint32_t, WorkerTally>
tallyWorkers(const std::vector<const LeaseEntry *> &sorted)
{
    std::map<std::uint32_t, WorkerTally> workers;
    for (const LeaseEntry *l : sorted) {
        WorkerTally &w = workers[l->worker];
        w.firstTick = std::min(w.firstTick, l->tickMs);
        w.lastTick = std::max(w.lastTick, l->tickMs);
        if (l->heartbeat || l->op == "renew") {
            ++w.heartbeats;
            continue;
        }
        if (l->op == "claim") {
            ++w.claims;
            w.openClaims[l->config] = l->tickMs;
        } else if (l->op == "complete" || l->op == "release") {
            ++(l->op == "complete" ? w.completes : w.releases);
            const auto it = w.openClaims.find(l->config);
            if (it != w.openClaims.end()) {
                w.busyMs += l->tickMs - it->second;
                w.openClaims.erase(it);
            }
        } else if (l->op == "reclaim") {
            ++w.reclaims;
        } else if (l->op == "quarantine") {
            ++w.quarantines;
        }
    }
    return workers;
}

} // namespace

bool
renderFabricSection(const std::vector<LeaseEntry> &leases,
                    std::ostream &out)
{
    if (leases.empty())
        return false;
    const std::vector<const LeaseEntry *> sorted = sortedLeases(leases);
    const std::uint64_t t0 = sorted.front()->tickMs;

    // Per-cell lease timeline, cells in config-code order, records in
    // tick order with ticks relative to the phase's first record.
    std::map<std::uint32_t, std::vector<const LeaseEntry *>> cells;
    for (const LeaseEntry *l : sorted) {
        if (!l->heartbeat)
            cells[l->config].push_back(l);
    }
    out << "== fabric leases ==\n";
    if (cells.empty())
        out << "(heartbeats only)\n";
    for (const auto &[code, recs] : cells) {
        out << "cell " << code << ":";
        bool first = true;
        for (const LeaseEntry *l : recs) {
            out << (first ? " " : "; ") << '+'
                << (l->tickMs - t0) << "ms w" << l->worker << ' '
                << l->op;
            if (l->op == "reclaim")
                out << "(w" << l->peer << ')';
            first = false;
        }
        out << '\n';
    }

    out << "\n== fabric workers ==\n";
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%-8s %7s %9s %8s %10s %8s %8s %6s\n", "worker",
                  "claims", "completes", "reclaims", "heartbeats",
                  "busy-ms", "span-ms", "util");
    out << line;
    for (const auto &[id, w] : tallyWorkers(sorted)) {
        const std::uint64_t span =
            w.lastTick >= w.firstTick ? w.lastTick - w.firstTick : 0;
        const std::string util = span == 0
            ? std::string("-")
            : num(100.0 * static_cast<double>(w.busyMs) /
                  static_cast<double>(span)) +
                "%";
        std::snprintf(
            line, sizeof(line),
            "w%-7u %7llu %9llu %8llu %10llu %8llu %8llu %6s\n", id,
            static_cast<unsigned long long>(w.claims),
            static_cast<unsigned long long>(w.completes),
            static_cast<unsigned long long>(w.reclaims),
            static_cast<unsigned long long>(w.heartbeats),
            static_cast<unsigned long long>(w.busyMs),
            static_cast<unsigned long long>(span), util.c_str());
        out << line;
    }
    return true;
}

bool
renderProfileSection(const std::vector<MetricSample> &metrics,
                     std::ostream &out)
{
    std::map<std::string, const MetricSample *> prof;
    for (const MetricSample &m : metrics) {
        if (m.name.rfind("profile/", 0) == 0)
            prof[m.name] = &m;
    }
    if (prof.empty())
        return false;

    const auto counterOf = [&](const std::string &name) {
        const auto it = prof.find(name);
        return it == prof.end() ? std::uint64_t{0}
                                : it->second->counterValue;
    };
    const std::uint64_t total = counterOf("profile/total_ops");
    const auto share = [&](std::uint64_t v) {
        return total == 0
            ? std::string("-")
            : num(100.0 * static_cast<double>(v) /
                  static_cast<double>(total)) +
                "%";
    };

    out << "== replay profile ==\n";
    out << "total ops: " << total << '\n';

    // One table per attribution axis. Kind names are flat
    // ("profile/op/<kind>"); component and phase tallies end in
    // "/ops" ("profile/component/<c>/ops"), their siblings are
    // rendered as detail lines below.
    const auto table = [&](const char *title, const std::string &prefix,
                           const std::string &suffix) {
        bool any = false;
        for (const auto &[name, m] : prof) {
            if (name.rfind(prefix, 0) != 0)
                continue;
            std::string label = name.substr(prefix.size());
            if (suffix.empty()) {
                if (label.find('/') != std::string::npos)
                    continue;
            } else {
                if (label.size() <= suffix.size() ||
                    label.compare(label.size() - suffix.size(),
                                  suffix.size(), suffix) != 0)
                    continue;
                label.resize(label.size() - suffix.size());
            }
            if (!any) {
                out << title << ":\n";
                any = true;
            }
            char line[128];
            std::snprintf(line, sizeof(line), "  %-16s %14llu  %s\n",
                          label.c_str(),
                          static_cast<unsigned long long>(
                              m->counterValue),
                          share(m->counterValue).c_str());
            out << line;
        }
    };
    table("ops by kind", "profile/op/", "");
    table("ops by component", "profile/component/", "/ops");
    table("ops by phase", "profile/phase/", "/ops");

    bool any_detail = false;
    for (const auto &[name, m] : prof) {
        if (name.rfind("profile/component/", 0) != 0 ||
            name.size() < 4 ||
            name.compare(name.size() - 4, 4, "/ops") == 0)
            continue;
        if (!any_detail) {
            out << "component detail:\n";
            any_detail = true;
        }
        out << "  " << name.substr(sizeof("profile/component/") - 1)
            << " = " << m->counterValue << '\n';
    }

    // Attribution coverage: every executed op lands in exactly one
    // op-kind counter, so kinds summing to total_ops means 100%.
    std::uint64_t attributed = 0;
    for (const auto &[name, m] : prof) {
        if (name.rfind("profile/op/", 0) == 0 &&
            name.find('/', sizeof("profile/op/") - 1) ==
                std::string::npos)
            attributed += m->counterValue;
    }
    out << "attributed: " << attributed << " of " << total << " ops";
    if (total != 0)
        out << " (" << share(attributed) << ')';
    out << '\n';

    const auto hist = prof.find("profile/epoch_ops");
    if (hist != prof.end() &&
        hist->second->kind == MetricKind::Histogram &&
        hist->second->histCount > 0) {
        const MetricSample &h = *hist->second;
        out << "epochs: " << h.histCount << " (mean ops "
            << num(static_cast<double>(h.histSum) /
                   static_cast<double>(h.histCount));
        if (h.histHasQuantiles)
            out << ", p50 " << num(h.histP50) << ", p90 "
                << num(h.histP90) << ", p99 " << num(h.histP99);
        out << ")\n";
    }
    return true;
}

void
renderReport(const std::vector<JournalEvent> &events,
             const std::vector<MetricSample> &metrics,
             const std::vector<LeaseEntry> &leases,
             const ReportOptions &opts, std::ostream &out)
{
    out << "sadapt-report\n";
    for (const JournalEvent &ev : events) {
        if (ev.type != "run")
            continue;
        out << "run:";
        for (const auto &[k, v] : ev.fields)
            out << ' ' << k << '=' << fieldText(v);
        out << '\n';
    }
    out << "events: " << events.size() << "\n\n";
    renderTimeline(events, out);
    out << '\n';
    renderReconfigSummary(events, out);
    out << '\n';
    if (renderStoreSection(events, metrics, out))
        out << '\n';
    if (renderFabricSection(leases, out))
        out << '\n';
    if (opts.profile && renderProfileSection(metrics, out))
        out << '\n';
    renderMetricRollups(metrics, out);
}

void
renderReport(const std::vector<JournalEvent> &events,
             const std::vector<MetricSample> &metrics,
             std::ostream &out)
{
    renderReport(events, metrics, {}, ReportOptions{}, out);
}

namespace {

void
appendTraceString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) >= 0x20)
            out += c;
    }
    out += '"';
}

} // namespace

void
writeChromeTrace(const std::vector<JournalEvent> &events,
                 const std::vector<LeaseEntry> &leases,
                 std::ostream &out)
{
    // One virtual process, two tracks: epochs (tid 0) as duration
    // slices, control events (tid 1) as instants. Simulated seconds
    // map to trace microseconds.
    constexpr double us = 1e6;
    out << "{\"traceEvents\":[\n";
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
           "\"tid\":0,\"args\":{\"name\":\"sparseadapt\"}},\n";
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
           "\"tid\":0,\"args\":{\"name\":\"epochs\"}},\n";
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
           "\"tid\":1,\"args\":{\"name\":\"control\"}}";
    for (const JournalEvent &ev : events) {
        std::string line;
        if (ev.type == "epoch") {
            const double dur =
                ev.numField("seconds").value_or(0.0) * us;
            line += "{\"name\":";
            appendTraceString(line,
                              "epoch " + std::to_string(ev.epoch));
            line += ",\"cat\":\"epoch\",\"ph\":\"X\",\"ts\":";
            line += num(ev.simTime * us);
            line += ",\"dur\":";
            line += num(dur);
            line += ",\"pid\":1,\"tid\":0,\"args\":{\"cfg\":";
            appendTraceString(line, fieldOr(ev, "cfg", "?"));
            line += ",\"metric\":";
            appendTraceString(line, fieldOr(ev, "metric", "?"));
            line += "}}";
        } else if (ev.type == "reconfig" || ev.type == "watchdog" ||
                   ev.type == "fault") {
            line += "{\"name\":";
            if (ev.type == "reconfig") {
                appendTraceString(line, "reconfig");
            } else if (ev.type == "watchdog") {
                appendTraceString(line,
                                  "watchdog " +
                                      fieldOr(ev, "to", "?"));
            } else {
                appendTraceString(line,
                                  "fault " + fieldOr(ev, "kind", "?"));
            }
            line += ",\"cat\":";
            appendTraceString(line, ev.type);
            line += ",\"ph\":\"i\",\"s\":\"g\",\"ts\":";
            line += num(ev.simTime * us);
            line += ",\"pid\":1,\"tid\":1,\"args\":{\"epoch\":";
            line += std::to_string(ev.epoch);
            line += "}}";
        } else {
            continue;
        }
        out << ",\n" << line;
    }

    // Fabric worker tracks: one virtual process (pid 2), one thread
    // per worker, claim-to-completion slices per cell plus instants
    // for reclaims and quarantines. The timebase is the lease tick
    // clock (milliseconds since the phase's first record), distinct
    // from the simulated-time tracks above.
    if (!leases.empty()) {
        const std::vector<const LeaseEntry *> sorted =
            sortedLeases(leases);
        const std::uint64_t t0 = sorted.front()->tickMs;
        const auto tickUs = [&](std::uint64_t tick) {
            return static_cast<double>(tick - t0) * 1e3;
        };

        out << ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
               "\"tid\":0,\"args\":{\"name\":\"fabric\"}}";
        std::set<std::uint32_t> workers;
        for (const LeaseEntry *l : sorted)
            workers.insert(l->worker);
        for (const std::uint32_t id : workers) {
            out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\","
                   "\"pid\":2,\"tid\":"
                << id << ",\"args\":{\"name\":";
            std::string name;
            appendTraceString(name, "worker " + std::to_string(id));
            out << name << "}}";
        }

        std::map<std::pair<std::uint32_t, std::uint32_t>,
                 std::uint64_t>
            open; // (worker, cell) -> claim tick
        for (const LeaseEntry *l : sorted) {
            if (l->heartbeat || l->op == "renew")
                continue;
            std::string line;
            if (l->op == "claim") {
                open[{l->worker, l->config}] = l->tickMs;
                continue;
            }
            if (l->op == "complete" || l->op == "release") {
                const auto it = open.find({l->worker, l->config});
                if (it == open.end())
                    continue;
                line += "{\"name\":";
                appendTraceString(
                    line, "cell " + std::to_string(l->config));
                line += ",\"cat\":\"lease\",\"ph\":\"X\",\"ts\":";
                line += num(tickUs(it->second));
                line += ",\"dur\":";
                line += num(tickUs(l->tickMs) - tickUs(it->second));
                line += ",\"pid\":2,\"tid\":";
                line += std::to_string(l->worker);
                line += ",\"args\":{\"op\":";
                appendTraceString(line, l->op);
                line += "}}";
                open.erase(it);
            } else if (l->op == "reclaim" ||
                       l->op == "quarantine") {
                line += "{\"name\":";
                appendTraceString(
                    line,
                    l->op + " cell " + std::to_string(l->config));
                line += ",\"cat\":\"lease\",\"ph\":\"i\",\"s\":\"t\","
                        "\"ts\":";
                line += num(tickUs(l->tickMs));
                line += ",\"pid\":2,\"tid\":";
                line += std::to_string(l->worker);
                line += ",\"args\":{\"peer\":";
                line += std::to_string(l->peer);
                line += "}}";
            } else {
                continue;
            }
            out << ",\n" << line;
        }
    }
    out << "\n]}\n";
}

void
writeChromeTrace(const std::vector<JournalEvent> &events,
                 std::ostream &out)
{
    writeChromeTrace(events, {}, out);
}

namespace {

/** JSON string escaping (same dialect as sadapt_check's JSON mode). */
std::string
jsonEscape(const std::string &s)
{
    std::string r;
    r.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': r += "\\\""; break;
          case '\\': r += "\\\\"; break;
          case '\n': r += "\\n"; break;
          case '\t': r += "\\t"; break;
          case '\r': r += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                r += "\\u00";
                r += hex[(c >> 4) & 0xF];
                r += hex[c & 0xF];
            } else {
                r += c;
            }
        }
    }
    return r;
}

std::string
jsonValue(const FieldValue &v)
{
    if (std::holds_alternative<std::int64_t>(v))
        return std::to_string(std::get<std::int64_t>(v));
    if (std::holds_alternative<double>(v))
        return jsonNum(std::get<double>(v));
    if (std::holds_alternative<bool>(v))
        return std::get<bool>(v) ? "true" : "false";
    return '"' + jsonEscape(std::get<std::string>(v)) + '"';
}

void
jsonFields(const JournalEvent &ev, std::string &out)
{
    out += '{';
    bool first = true;
    for (const auto &[k, v] : ev.fields) {
        if (!first)
            out += ", ";
        out += '"' + jsonEscape(k) + "\": " + jsonValue(v);
        first = false;
    }
    out += '}';
}

} // namespace

void
renderReportJson(const std::vector<JournalEvent> &events,
                 const std::vector<MetricSample> &metrics,
                 const std::vector<LeaseEntry> &leases,
                 const ReportOptions &opts, std::ostream &out)
{
    out << "{\n  \"version\": 1,\n";

    const JournalEvent *run = nullptr;
    for (const JournalEvent &ev : events) {
        if (ev.type == "run") {
            run = &ev;
            break;
        }
    }
    out << "  \"run\": ";
    if (run != nullptr) {
        std::string fields;
        jsonFields(*run, fields);
        out << fields;
    } else {
        out << "null";
    }
    out << ",\n  \"events\": " << events.size() << ",\n";

    out << "  \"timeline\": [";
    bool first = true;
    for (const JournalEvent &ev : events) {
        if (ev.type == "run")
            continue;
        out << (first ? "\n" : ",\n");
        first = false;
        out << "    {\"seq\": " << ev.seq << ", \"epoch\": "
            << ev.epoch << ", \"t\": " << jsonNum(ev.simTime)
            << ", \"path\": \"" << jsonEscape(ev.path)
            << "\", \"type\": \"" << jsonEscape(ev.type)
            << "\", \"fields\": ";
        std::string fields;
        jsonFields(ev, fields);
        out << fields << '}';
    }
    out << (first ? "],\n" : "\n  ],\n");

    // Reconfiguration summary, same tallies as the text renderer.
    struct ParamTally
    {
        std::uint64_t proposed = 0, accepted = 0, vetoed = 0;
    };
    std::map<std::string, ParamTally> per_param;
    std::uint64_t applied = 0;
    double cost_s = 0.0, cost_j = 0.0;
    for (const JournalEvent &ev : events) {
        if (ev.type == "policy") {
            ParamTally &t = per_param[fieldOr(ev, "param", "?")];
            ++t.proposed;
            ++(ev.boolField("accepted").value_or(false) ? t.accepted
                                                        : t.vetoed);
        } else if (ev.type == "reconfig") {
            ++applied;
            cost_s += ev.numField("cost_s").value_or(0.0);
            cost_j += ev.numField("cost_j").value_or(0.0);
        }
    }
    out << "  \"reconfig\": {\"applied\": " << applied
        << ", \"cost_s\": " << jsonNum(cost_s) << ", \"cost_j\": "
        << jsonNum(cost_j) << ", \"params\": [";
    first = true;
    for (const auto &[param, t] : per_param) {
        out << (first ? "\n" : ",\n");
        first = false;
        out << "    {\"param\": \"" << jsonEscape(param)
            << "\", \"proposed\": " << t.proposed
            << ", \"accepted\": " << t.accepted << ", \"vetoed\": "
            << t.vetoed << '}';
    }
    out << (first ? "]},\n" : "\n  ]},\n");

    // Metrics, name-sorted like the text snapshot.
    std::vector<const MetricSample *> sorted_metrics;
    sorted_metrics.reserve(metrics.size());
    for (const MetricSample &m : metrics)
        sorted_metrics.push_back(&m);
    std::stable_sort(sorted_metrics.begin(), sorted_metrics.end(),
                     [](const MetricSample *a, const MetricSample *b) {
                         return a->name < b->name;
                     });
    out << "  \"metrics\": [";
    first = true;
    for (const MetricSample *m : sorted_metrics) {
        out << (first ? "\n" : ",\n");
        first = false;
        out << "    {\"name\": \"" << jsonEscape(m->name) << "\", ";
        switch (m->kind) {
          case MetricKind::Counter:
            out << "\"kind\": \"counter\", \"value\": "
                << m->counterValue;
            break;
          case MetricKind::Gauge:
            out << "\"kind\": \"gauge\", \"value\": "
                << jsonNum(m->gaugeValue);
            break;
          case MetricKind::Histogram:
            out << "\"kind\": \"hist\", \"count\": " << m->histCount
                << ", \"sum\": " << m->histSum;
            if (m->histHasQuantiles)
                out << ", \"p50\": " << jsonNum(m->histP50)
                    << ", \"p90\": " << jsonNum(m->histP90)
                    << ", \"p99\": " << jsonNum(m->histP99);
            out << ", \"buckets\": [";
            for (std::size_t i = 0; i < m->histBuckets.size(); ++i) {
                if (i > 0)
                    out << ", ";
                out << '[' << m->histBuckets[i].first << ", "
                    << m->histBuckets[i].second << ']';
            }
            out << ']';
            break;
        }
        out << '}';
    }
    out << (first ? "],\n" : "\n  ],\n");

    // Fabric sections (null without lease records).
    out << "  \"fabric\": ";
    if (leases.empty()) {
        out << "null,\n";
    } else {
        const std::vector<const LeaseEntry *> sorted =
            sortedLeases(leases);
        const std::uint64_t t0 = sorted.front()->tickMs;
        std::map<std::uint32_t, std::vector<const LeaseEntry *>> cells;
        for (const LeaseEntry *l : sorted) {
            if (!l->heartbeat)
                cells[l->config].push_back(l);
        }
        out << "{\n    \"cells\": [";
        first = true;
        for (const auto &[code, recs] : cells) {
            out << (first ? "\n" : ",\n");
            first = false;
            out << "      {\"config\": " << code << ", \"records\": [";
            for (std::size_t i = 0; i < recs.size(); ++i) {
                if (i > 0)
                    out << ", ";
                out << "{\"t_ms\": " << (recs[i]->tickMs - t0)
                    << ", \"worker\": " << recs[i]->worker
                    << ", \"op\": \"" << jsonEscape(recs[i]->op)
                    << "\", \"peer\": " << recs[i]->peer << '}';
            }
            out << "]}";
        }
        out << (first ? "],\n" : "\n    ],\n");
        out << "    \"workers\": [";
        first = true;
        for (const auto &[id, w] : tallyWorkers(sorted)) {
            const std::uint64_t span = w.lastTick >= w.firstTick
                ? w.lastTick - w.firstTick
                : 0;
            out << (first ? "\n" : ",\n");
            first = false;
            out << "      {\"worker\": " << id << ", \"claims\": "
                << w.claims << ", \"completes\": " << w.completes
                << ", \"reclaims\": " << w.reclaims
                << ", \"heartbeats\": " << w.heartbeats
                << ", \"busy_ms\": " << w.busyMs << ", \"span_ms\": "
                << span << '}';
        }
        out << (first ? "]\n  },\n" : "\n    ]\n  },\n");
    }

    // Profile roll-up (null unless requested and present).
    bool have_profile = false;
    if (opts.profile) {
        for (const MetricSample &m : metrics) {
            if (m.name.rfind("profile/", 0) == 0) {
                have_profile = true;
                break;
            }
        }
    }
    out << "  \"profile\": ";
    if (!have_profile) {
        out << "null\n";
    } else {
        std::uint64_t total = 0, attributed = 0;
        const auto axis = [&](const std::string &prefix,
                              const std::string &suffix) {
            std::string body = "{";
            bool axis_first = true;
            for (const MetricSample *m : sorted_metrics) {
                const std::string &name = m->name;
                if (name.rfind(prefix, 0) != 0)
                    continue;
                std::string label = name.substr(prefix.size());
                if (suffix.empty()) {
                    if (label.find('/') != std::string::npos)
                        continue;
                } else {
                    if (label.size() <= suffix.size() ||
                        label.compare(label.size() - suffix.size(),
                                      suffix.size(), suffix) != 0)
                        continue;
                    label.resize(label.size() - suffix.size());
                }
                if (!axis_first)
                    body += ", ";
                body += '"' + jsonEscape(label) +
                    "\": " + std::to_string(m->counterValue);
                axis_first = false;
            }
            body += '}';
            return body;
        };
        for (const MetricSample *m : sorted_metrics) {
            if (m->name == "profile/total_ops")
                total = m->counterValue;
            else if (m->name.rfind("profile/op/", 0) == 0 &&
                     m->name.find('/', sizeof("profile/op/") - 1) ==
                         std::string::npos)
                attributed += m->counterValue;
        }
        out << "{\"total_ops\": " << total << ", \"attributed_ops\": "
            << attributed << ", \"ops\": " << axis("profile/op/", "")
            << ", \"components\": "
            << axis("profile/component/", "/ops") << ", \"phases\": "
            << axis("profile/phase/", "/ops") << "}\n";
    }
    out << "}\n";
}

} // namespace sadapt::obs
