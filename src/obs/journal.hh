/**
 * @file
 * The structured event journal: an append-only, schema-versioned JSONL
 * record of everything the SparseAdapt control loop saw and decided.
 *
 * Every event is one flat JSON object per line with a fixed envelope —
 * schema version ("v"), sequence number ("seq"), epoch id ("epoch"),
 * simulated time in seconds ("t"), emitting component path ("path")
 * and event type ("type") — followed by free-form scalar payload
 * fields. Schema v1 event types:
 *
 *   run       run metadata (kernel, dataset, mode, policy, ...)
 *   epoch     one epoch executed: cfg spec, seconds, flops, metric
 *   prediction  per-tree model output: one field per parameter slug
 *               (l1_sharing, l2_sharing, l1_capacity, l2_capacity,
 *               clock, prefetch) holding the predicted value index
 *   policy    one hysteresis decision: param, from, to, accepted,
 *             cost_s, flush
 *   reconfig  an applied configuration switch: from, to (spec
 *             strings), cost_s, cost_j, flush_l1, flush_l2
 *   guard     telemetry-guard verdict: verdict (ok|suspect|bad|
 *             missing), flagged count
 *   watchdog  a degraded-mode state transition: from, to
 *             (normal|reverted), streak/held context
 *   fault     an injected fault: kind, detail
 *   store     a persistent epoch-store lifecycle point: op
 *             (open|flush) plus cumulative hit/miss/record stats
 *
 * Schema v2 adds one event type (readers accept v1 and v2 lines; the
 * writer stamps v2):
 *
 *   session   a serve-layer session lifecycle point: op
 *             (open|close|decision) plus the integer session id —
 *             open/close bracket one tenant's event stream inside a
 *             merged multi-session journal, decision marks one
 *             reconfiguration answer returned to that tenant
 *
 * Benchmarks deliberately do not journal store events (their journals
 * must stay byte-identical across cold- and warm-store runs); the
 * interactive CLI does.
 *
 * The journal is an *observer*: attaching or detaching a writer must
 * never change a single control decision (the determinism guard test
 * in tests/test_obs_determinism.cc enforces this).
 */

#ifndef SADAPT_OBS_JOURNAL_HH
#define SADAPT_OBS_JOURNAL_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.hh"

namespace sadapt::obs {

/** Version stamped into every journal event the writer emits. */
inline constexpr std::int64_t journalSchemaVersion = 2;

/** Oldest schema version readJournal() still accepts. */
inline constexpr std::int64_t journalMinSchemaVersion = 1;

/** One payload field value; integers stay exact through round-trips. */
using FieldValue =
    std::variant<std::int64_t, double, std::string, bool>;

/** One journal event: envelope plus ordered payload fields. */
struct JournalEvent
{
    /** Schema version the line carried (writer restamps on write). */
    std::int64_t schemaVersion = journalSchemaVersion;
    std::uint64_t seq = 0;
    std::uint64_t epoch = 0;
    double simTime = 0.0; //!< seconds of simulated time ("t")
    std::string path;     //!< emitting component, e.g. "adapt/policy"
    std::string type;

    std::vector<std::pair<std::string, FieldValue>> fields;

    /** Payload field by key; null when absent. */
    const FieldValue *field(std::string_view key) const;

    /** Typed accessors; nullopt when absent or the wrong type. */
    std::optional<std::int64_t> intField(std::string_view key) const;
    std::optional<double> numField(std::string_view key) const;
    std::optional<std::string> strField(std::string_view key) const;
    std::optional<bool> boolField(std::string_view key) const;
};

/**
 * Serializes events as one JSON object per line to a caller-owned
 * stream, stamping schema version and sequence numbers. Writing is
 * append-only; the writer never seeks.
 */
class JournalWriter
{
  public:
    explicit JournalWriter(std::ostream &out)
        : outV(&out)
    {
    }

    /** Append one event (ev.seq is overwritten with the next seq). */
    void write(JournalEvent ev);

    std::uint64_t eventsWritten() const { return seqV; }

  private:
    std::ostream *outV;
    std::uint64_t seqV = 0;
};

/** Result of reading a journal back. */
struct JournalRead
{
    std::vector<JournalEvent> events;

    /**
     * True when the final line was a partial record (the writing
     * process died mid-append); the events before it are intact and
     * returned.
     */
    bool truncated = false;
};

/**
 * Parse a JSONL journal. A malformed line anywhere but the end of the
 * file, an unsupported schema version, or a missing envelope key is a
 * recoverable error; a partial *final* line is recovered (see
 * JournalRead::truncated).
 */
[[nodiscard]] Result<JournalRead> readJournal(std::istream &in);

/** readJournal() from a file path. */
[[nodiscard]] Result<JournalRead>
readJournalFile(const std::string &path);

/** The schema v2 event types, for validators and tooling. */
const std::vector<std::string> &journalEventTypes();

} // namespace sadapt::obs

#endif // SADAPT_OBS_JOURNAL_HH
