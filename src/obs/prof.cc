#include "obs/prof.hh"

#include <ostream>

namespace sadapt::obs {

ProfRegistry &
ProfRegistry::instance()
{
    static ProfRegistry reg;
    return reg;
}

std::vector<ProfSite>
ProfRegistry::snapshot() const
{
    std::vector<ProfSite> out;
    out.reserve(sites.size());
    for (const auto &[name, site] : sites)
        out.push_back(site);
    return out;
}

void
ProfRegistry::writeProfileText(std::ostream &out) const
{
    out << "sadapt-prof v1\n";
    for (const auto &[name, site] : sites) {
        out << "site " << name << " calls " << site.calls
            << " total_ns " << site.totalNs << '\n';
    }
    out << "end\n";
}

} // namespace sadapt::obs
