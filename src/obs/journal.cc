#include "obs/journal.hh"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace sadapt::obs {

const FieldValue *
JournalEvent::field(std::string_view key) const
{
    for (const auto &[k, v] : fields) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

std::optional<std::int64_t>
JournalEvent::intField(std::string_view key) const
{
    const FieldValue *v = field(key);
    if (v == nullptr || !std::holds_alternative<std::int64_t>(*v))
        return std::nullopt;
    return std::get<std::int64_t>(*v);
}

std::optional<double>
JournalEvent::numField(std::string_view key) const
{
    const FieldValue *v = field(key);
    if (v == nullptr)
        return std::nullopt;
    if (std::holds_alternative<double>(*v))
        return std::get<double>(*v);
    if (std::holds_alternative<std::int64_t>(*v))
        return static_cast<double>(std::get<std::int64_t>(*v));
    return std::nullopt;
}

std::optional<std::string>
JournalEvent::strField(std::string_view key) const
{
    const FieldValue *v = field(key);
    if (v == nullptr || !std::holds_alternative<std::string>(*v))
        return std::nullopt;
    return std::get<std::string>(*v);
}

std::optional<bool>
JournalEvent::boolField(std::string_view key) const
{
    const FieldValue *v = field(key);
    if (v == nullptr || !std::holds_alternative<bool>(*v))
        return std::nullopt;
    return std::get<bool>(*v);
}

namespace {

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/** Shortest decimal that round-trips the double, valid as JSON. */
std::string
formatJsonNumber(double v)
{
    char buf[64];
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(buf, "%lf", &back);
        if (back == v)
            break;
    }
    // JSON requires a fractional or exponent part to stay a number
    // type distinguishable from integers; leave plain integers as-is
    // (readers accept both), but rewrite non-finite values, which JSON
    // cannot represent, as null-safe strings is overkill here — the
    // journal only ever records finite doubles.
    return buf;
}

void
appendFieldValue(std::string &out, const FieldValue &v)
{
    if (std::holds_alternative<std::int64_t>(v)) {
        out += std::to_string(std::get<std::int64_t>(v));
    } else if (std::holds_alternative<double>(v)) {
        out += formatJsonNumber(std::get<double>(v));
    } else if (std::holds_alternative<bool>(v)) {
        out += std::get<bool>(v) ? "true" : "false";
    } else {
        appendJsonString(out, std::get<std::string>(v));
    }
}

} // namespace

void
JournalWriter::write(JournalEvent ev)
{
    ev.seq = seqV++;
    std::string line;
    line.reserve(96);
    line += "{\"v\":";
    line += std::to_string(journalSchemaVersion);
    line += ",\"seq\":";
    line += std::to_string(ev.seq);
    line += ",\"epoch\":";
    line += std::to_string(ev.epoch);
    line += ",\"t\":";
    line += formatJsonNumber(ev.simTime);
    line += ",\"path\":";
    appendJsonString(line, ev.path);
    line += ",\"type\":";
    appendJsonString(line, ev.type);
    for (const auto &[k, v] : ev.fields) {
        line += ',';
        appendJsonString(line, k);
        line += ':';
        appendFieldValue(line, v);
    }
    line += "}\n";
    *outV << line;
}

namespace {

/**
 * Minimal parser for the flat JSON objects the journal writes: one
 * object per line, string keys, scalar values only (no nesting).
 */
class LineParser
{
  public:
    explicit LineParser(const std::string &line)
        : s(line)
    {
    }

    [[nodiscard]] Status
    parse(std::vector<std::pair<std::string, FieldValue>> &out)
    {
        skipWs();
        if (!consume('{'))
            return Status::error("expected '{'");
        skipWs();
        if (consume('}'))
            return finish();
        for (;;) {
            std::string key;
            SADAPT_TRY_STATUS(parseString(key));
            skipWs();
            if (!consume(':'))
                return Status::error("expected ':' after key");
            skipWs();
            FieldValue value;
            SADAPT_TRY_STATUS(parseValue(value));
            out.emplace_back(std::move(key), std::move(value));
            skipWs();
            if (consume(',')) {
                skipWs();
                continue;
            }
            if (consume('}'))
                return finish();
            return Status::error("expected ',' or '}'");
        }
    }

  private:
    Status
    finish()
    {
        skipWs();
        if (pos != s.size())
            return Status::error("trailing characters after object");
        return Status::ok();
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])) != 0)
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    [[nodiscard]] Status
    parseString(std::string &out)
    {
        if (!consume('"'))
            return Status::error("expected '\"'");
        out.clear();
        while (pos < s.size()) {
            char c = s[pos++];
            if (c == '"')
                return Status::ok();
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= s.size())
                return Status::error("dangling escape");
            char e = s[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos + 4 > s.size())
                    return Status::error("short \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return Status::error("bad \\u escape");
                }
                // The writer only emits \u for control bytes; decode
                // the basic-plane code point as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                return Status::error("bad escape character");
            }
        }
        return Status::error("unterminated string");
    }

    [[nodiscard]] Status
    parseValue(FieldValue &out)
    {
        if (pos >= s.size())
            return Status::error("expected value");
        char c = s[pos];
        if (c == '"') {
            std::string str;
            SADAPT_TRY_STATUS(parseString(str));
            out = std::move(str);
            return Status::ok();
        }
        if (s.compare(pos, 4, "true") == 0) {
            pos += 4;
            out = true;
            return Status::ok();
        }
        if (s.compare(pos, 5, "false") == 0) {
            pos += 5;
            out = false;
            return Status::ok();
        }
        // Number: scan the JSON number grammar's character set, then
        // decide integer vs double by the presence of '.', 'e', 'E'.
        std::size_t start = pos;
        bool is_double = false;
        while (pos < s.size()) {
            char n = s[pos];
            if (n == '.' || n == 'e' || n == 'E') {
                is_double = true;
            } else if (n != '-' && n != '+' &&
                       (n < '0' || n > '9')) {
                break;
            }
            ++pos;
        }
        if (pos == start)
            return Status::error("expected value");
        const std::string tok = s.substr(start, pos - start);
        try {
            if (is_double) {
                std::size_t used = 0;
                double d = std::stod(tok, &used);
                if (used != tok.size())
                    return Status::error("bad number '" + tok + "'");
                out = d;
            } else {
                std::size_t used = 0;
                std::int64_t i = std::stoll(tok, &used);
                if (used != tok.size())
                    return Status::error("bad number '" + tok + "'");
                out = i;
            }
        } catch (const std::exception &) {
            return Status::error("bad number '" + tok + "'");
        }
        return Status::ok();
    }

    const std::string &s;
    std::size_t pos = 0;
};

/** Parse one journal line into an event (envelope extracted). */
[[nodiscard]] Status
parseEventLine(const std::string &line, JournalEvent &ev)
{
    std::vector<std::pair<std::string, FieldValue>> fields;
    SADAPT_TRY_STATUS(LineParser(line).parse(fields));

    bool saw_v = false, saw_seq = false, saw_epoch = false;
    bool saw_t = false, saw_path = false, saw_type = false;
    ev = JournalEvent{};
    for (auto &[k, v] : fields) {
        if (k == "v") {
            if (!std::holds_alternative<std::int64_t>(v))
                return Status::error("'v' must be an integer");
            const std::int64_t got = std::get<std::int64_t>(v);
            if (got < journalMinSchemaVersion ||
                got > journalSchemaVersion)
                return Status::error(
                    str("unsupported schema version ", got,
                        " (supported ", journalMinSchemaVersion, "..",
                        journalSchemaVersion, ")"));
            ev.schemaVersion = got;
            saw_v = true;
        } else if (k == "seq") {
            if (!std::holds_alternative<std::int64_t>(v) ||
                std::get<std::int64_t>(v) < 0)
                return Status::error("'seq' must be a non-negative "
                                     "integer");
            ev.seq = static_cast<std::uint64_t>(
                std::get<std::int64_t>(v));
            saw_seq = true;
        } else if (k == "epoch") {
            if (!std::holds_alternative<std::int64_t>(v) ||
                std::get<std::int64_t>(v) < 0)
                return Status::error("'epoch' must be a non-negative "
                                     "integer");
            ev.epoch = static_cast<std::uint64_t>(
                std::get<std::int64_t>(v));
            saw_epoch = true;
        } else if (k == "t") {
            if (std::holds_alternative<double>(v))
                ev.simTime = std::get<double>(v);
            else if (std::holds_alternative<std::int64_t>(v))
                ev.simTime = static_cast<double>(
                    std::get<std::int64_t>(v));
            else
                return Status::error("'t' must be a number");
            saw_t = true;
        } else if (k == "path") {
            if (!std::holds_alternative<std::string>(v))
                return Status::error("'path' must be a string");
            ev.path = std::move(std::get<std::string>(v));
            saw_path = true;
        } else if (k == "type") {
            if (!std::holds_alternative<std::string>(v))
                return Status::error("'type' must be a string");
            ev.type = std::move(std::get<std::string>(v));
            saw_type = true;
        } else {
            ev.fields.emplace_back(std::move(k), std::move(v));
        }
    }
    if (!saw_v || !saw_seq || !saw_epoch || !saw_t || !saw_path ||
        !saw_type)
        return Status::error("missing envelope key (need v, seq, "
                             "epoch, t, path, type)");
    return Status::ok();
}

} // namespace

Result<JournalRead>
readJournal(std::istream &in)
{
    JournalRead out;
    std::string line;
    std::uint64_t line_no = 0;
    bool pending_error = false;
    std::string pending_msg;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        if (pending_error) {
            // The bad line was not the last one: corruption mid-file.
            return Status::error(pending_msg);
        }
        JournalEvent ev;
        Status st = parseEventLine(line, ev);
        if (!st.isOk()) {
            // Remember the failure; if no further lines follow, treat
            // it as a torn final append and recover.
            pending_error = true;
            pending_msg =
                str("journal line ", line_no, ": ", st.message());
            continue;
        }
        out.events.push_back(std::move(ev));
    }
    if (pending_error)
        out.truncated = true;
    return out;
}

Result<JournalRead>
readJournalFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Status::error("cannot open journal: " + path);
    return readJournal(in);
}

const std::vector<std::string> &
journalEventTypes()
{
    static const std::vector<std::string> types = {
        "run",      "epoch",    "prediction", "policy",
        "reconfig", "guard",    "watchdog",   "fault",
        "store",    "fabric",   "session",
    };
    return types;
}

} // namespace sadapt::obs
