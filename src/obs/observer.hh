/**
 * @file
 * RunObserver: the single handle a run threads through the simulator
 * and the adaptation loop to collect observability data.
 *
 * It bundles the metrics registry and an optional journal writer and
 * carries the current epoch id / simulated time so emitting components
 * don't have to. Every hook site takes a `RunObserver *` that may be
 * null; a null observer must cost one branch and change nothing —
 * the control loop's decisions are identical with and without one
 * attached (enforced by tests/test_obs_determinism.cc).
 */

#ifndef SADAPT_OBS_OBSERVER_HH
#define SADAPT_OBS_OBSERVER_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hh"
#include "obs/journal.hh"
#include "obs/metrics.hh"

namespace sadapt::obs {

/** Per-run observability context: metrics + optional journal. */
class RunObserver
{
  public:
    RunObserver() = default;

    // The observer hands out instrument references; moving it would
    // invalidate the journal's stream pointer bookkeeping.
    RunObserver(const RunObserver &) = delete;
    RunObserver &operator=(const RunObserver &) = delete;

    /** The run's metric registry (always available). */
    MetricRegistry &metrics() { return metricsV; }
    const MetricRegistry &metrics() const { return metricsV; }

    /** Start journaling to a caller-owned stream (e.g. for tests). */
    void attachJournal(std::ostream &out);

    /** Start journaling to a file; fails if it cannot be created. */
    [[nodiscard]] Status openJournal(const std::string &path);

    /** The journal writer, or null when no journal is attached. */
    JournalWriter *journal() { return writerV.get(); }

    /**
     * Enter an epoch: events emitted until the next call are stamped
     * with this epoch id and the simulated time at its start.
     */
    void
    beginEpoch(std::uint64_t epoch, double sim_time)
    {
        epochV = epoch;
        simTimeV = sim_time;
    }

    std::uint64_t epoch() const { return epochV; }
    double simTime() const { return simTimeV; }

    /**
     * Append one event stamped with the current epoch context; a
     * no-op when no journal is attached.
     */
    void emit(std::string path, std::string type,
              std::vector<std::pair<std::string, FieldValue>> fields =
                  {});

    /** Flush the journal stream (no-op without a journal). */
    void flush();

  private:
    MetricRegistry metricsV;
    std::unique_ptr<std::ofstream> ownedOutV;
    std::unique_ptr<JournalWriter> writerV;
    std::uint64_t epochV = 0;
    double simTimeV = 0.0;
};

} // namespace sadapt::obs

#endif // SADAPT_OBS_OBSERVER_HH
