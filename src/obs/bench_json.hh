/**
 * @file
 * Reader for the machine-readable bench reports the harness writes
 * under bench_results/BENCH_<name>.json (bench/bench_common.hh,
 * BenchReport::write()). tools/bench_trend consumes these to track
 * host-side sweep performance across revisions and gate regressions
 * against a committed baseline.
 *
 * The parser accepts any JSON object with the BenchReport key set and
 * ignores unknown keys, so reports from older or newer harness
 * revisions stay readable as long as the core keys survive.
 */

#ifndef SADAPT_OBS_BENCH_JSON_HH
#define SADAPT_OBS_BENCH_JSON_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hh"

namespace sadapt::obs {

/** One (kernel, config) measurement from a bench report. */
struct BenchResultEntry
{
    std::string kernel;
    std::string config;
    double gflops = 0.0;
    double gflopsPerWatt = 0.0;
};

/** One parsed BENCH_<name>.json report. */
struct BenchRun
{
    std::string bench;
    std::string gitRev;

    /** Host provenance (never feeds back into simulation). */
    double hostWallSeconds = 0.0;
    double sweepWallSeconds = 0.0;
    std::uint64_t configsSimulated = 0;

    /** Scale knobs the run was measured at. */
    double scale = 0.0;
    std::uint64_t samples = 0;
    std::uint64_t jobs = 0;

    /**
     * Trace pipeline provenance: the format replayed from and the
     * host seconds spent decoding it to the replay-ready form.
     * Reports predating the knob read as "columnar" — the format
     * every replay has used since the SoA engine landed.
     */
    std::string traceFormat = "columnar";
    double traceDecodeSeconds = 0.0;

    /**
     * Serve provenance (bench/serve_traffic only, zero elsewhere):
     * the traffic-script size and pinned serve dataset scale the run
     * replayed, and its throughput/latency figures. Like the scale
     * knobs, the first two gate comparability; the rest are the
     * trended measurements.
     */
    std::uint64_t serveSessions = 0;
    double serveScale = 0.0;
    double sessionsPerSecond = 0.0;
    double decisionP50Ms = 0.0;
    double decisionP99Ms = 0.0;
    double serveEpochsPerSecond = 0.0;

    /** Fabric / store provenance. */
    std::uint64_t fabricWorkers = 0;
    std::uint64_t fabricLeasesReclaimed = 0;
    std::uint64_t storeHits = 0;
    std::uint64_t storeMisses = 0;
    std::string storePath;

    std::vector<BenchResultEntry> results;

    /** Where the report was read from (set by readBenchJsonFile). */
    std::string sourcePath;
};

/** Parse one bench report from JSON text. */
Result<BenchRun> parseBenchJson(std::string_view text);

/** Read and parse one BENCH_<name>.json file. */
Result<BenchRun> readBenchJsonFile(const std::string &path);

/**
 * Wall-clock figure of merit for trend comparisons: the accumulated
 * sweep seconds when the run recorded any (they exclude train-cache
 * warm-up and table printing), the whole-process wall time otherwise.
 */
double benchWallSeconds(const BenchRun &run);

/** Geometric mean of the positive gflops entries; 0 when none. */
double benchGeomeanGflops(const BenchRun &run);

/**
 * Index of the fastest run by benchWallSeconds() — the best-of-N rep.
 * Ties break toward the earlier index; SIZE_MAX when `runs` is empty.
 */
std::size_t bestRunIndex(const std::vector<BenchRun> &runs);

/**
 * Whether two runs measure the same thing: same bench name, same
 * scale knobs (scale and sample count), same trace format and — for
 * serve benches — the same traffic-script size and serve scale.
 * Comparing wall seconds across different scales — or across trace
 * pipelines with different decode cost profiles — is meaningless, so
 * bench_trend only trends and gates comparable runs.
 */
bool benchComparable(const BenchRun &a, const BenchRun &b);

} // namespace sadapt::obs

#endif // SADAPT_OBS_BENCH_JSON_HH
