#include "obs/metrics.hh"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace sadapt::obs {

std::string
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Gauge: return "gauge";
      case MetricKind::Histogram: return "hist";
    }
    panic("bad MetricKind");
}

std::size_t
Histogram::bucketOf(std::uint64_t v)
{
    return static_cast<std::size_t>(std::bit_width(v));
}

std::uint64_t
Histogram::bucketLo(std::size_t bucket)
{
    if (bucket == 0)
        return 0;
    return std::uint64_t{1} << (bucket - 1);
}

double
Histogram::quantile(double q) const
{
    if (countV == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    const double rank = q * static_cast<double>(countV);
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < numBuckets; ++b) {
        if (buckets[b] == 0)
            continue;
        const std::uint64_t below = cum;
        cum += buckets[b];
        if (static_cast<double>(cum) < rank)
            continue;
        if (b == 0)
            return 0.0;
        const double lo = static_cast<double>(bucketLo(b));
        // The last bucket (b == 64) covers [2^63, 2^64); its upper
        // edge is exactly 2 * lo, same as every other power-of-two
        // bucket, so no special case is needed.
        const double hi = 2.0 * lo;
        const double frac = (rank - static_cast<double>(below)) /
                            static_cast<double>(buckets[b]);
        return lo + (hi - lo) * frac;
    }
    // rank <= count always lands inside the loop; keep the compiler
    // happy with the top edge of the occupied range.
    return static_cast<double>(bucketLo(numBuckets - 1));
}

void
Histogram::addParsed(
    std::uint64_t count, std::uint64_t sum,
    const std::vector<std::pair<std::size_t, std::uint64_t>>
        &bucket_counts)
{
    for (const auto &[bucket, n] : bucket_counts) {
        SADAPT_ASSERT(bucket < numBuckets,
                      "parsed histogram bucket out of range");
        buckets[bucket] += n;
    }
    countV += count;
    sumV += sum;
}

MetricRegistry::Entry &
MetricRegistry::entry(const std::string &name, MetricKind kind)
{
    SADAPT_ASSERT(!name.empty() &&
                      name.find_first_of(" \t\n") == std::string::npos,
                  "metric names must be non-empty and space-free");
    auto it = byName.find(name);
    if (it != byName.end()) {
        SADAPT_ASSERT(it->second->kind == kind,
                      str("metric '", name, "' already registered as ",
                          metricKindName(it->second->kind),
                          ", requested as ", metricKindName(kind)));
        return *it->second;
    }
    entries.push_back(Entry{name, kind, {}, {}, {}});
    byName.emplace(name, &entries.back());
    return entries.back();
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    return entry(name, MetricKind::Counter).counterV;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    return entry(name, MetricKind::Gauge).gaugeV;
}

Histogram &
MetricRegistry::histogram(const std::string &name)
{
    return entry(name, MetricKind::Histogram).histV;
}

void
MetricRegistry::merge(const MetricRegistry &other)
{
    for (const Entry &e : other.entries) {
        switch (e.kind) {
          case MetricKind::Counter:
            counter(e.name).add(e.counterV.value());
            break;
          case MetricKind::Gauge:
            gauge(e.name).set(e.gaugeV.value());
            break;
          case MetricKind::Histogram:
            histogram(e.name).merge(e.histV);
            break;
        }
    }
}

void
MetricRegistry::mergeSamples(const std::vector<MetricSample> &samples)
{
    for (const MetricSample &s : samples) {
        switch (s.kind) {
          case MetricKind::Counter:
            counter(s.name).add(s.counterValue);
            break;
          case MetricKind::Gauge:
            gauge(s.name).set(s.gaugeValue);
            break;
          case MetricKind::Histogram:
            histogram(s.name).addParsed(s.histCount, s.histSum,
                                        s.histBuckets);
            break;
        }
    }
}

std::optional<MetricKind>
MetricRegistry::kindOf(const std::string &name) const
{
    auto it = byName.find(name);
    if (it == byName.end())
        return std::nullopt;
    return it->second->kind;
}

namespace {

/** Shortest round-trip decimal for a double. */
std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) {
        // Try shorter representations for readable dumps.
        for (int prec = 1; prec <= 16; ++prec) {
            char s[64];
            std::snprintf(s, sizeof(s), "%.*g", prec, v);
            std::sscanf(s, "%lf", &back);
            if (back == v)
                return s;
        }
    }
    return buf;
}

} // namespace

void
MetricRegistry::writeText(std::ostream &out) const
{
    out << "sadapt-metrics v1\n";
    // byName is an ordered map, so iteration is already name-sorted.
    for (const auto &[name, e] : byName) {
        switch (e->kind) {
          case MetricKind::Counter:
            out << "counter " << name << ' ' << e->counterV.value()
                << '\n';
            break;
          case MetricKind::Gauge:
            out << "gauge " << name << ' '
                << formatDouble(e->gaugeV.value()) << '\n';
            break;
          case MetricKind::Histogram: {
            const Histogram &h = e->histV;
            out << "hist " << name << " count " << h.count() << " sum "
                << h.sum();
            if (h.count() != 0) {
                out << " p50 " << formatDouble(h.quantile(0.50))
                    << " p90 " << formatDouble(h.quantile(0.90))
                    << " p99 " << formatDouble(h.quantile(0.99));
            }
            out << " buckets";
            for (std::size_t b = 0; b < Histogram::numBuckets; ++b) {
                if (h.bucketCount(b) != 0)
                    out << ' ' << b << ':' << h.bucketCount(b);
            }
            out << '\n';
            break;
          }
        }
    }
    out << "end\n";
}

Result<std::vector<MetricSample>>
readMetricsText(std::istream &in)
{
    std::string line;
    if (!std::getline(in, line) || line != "sadapt-metrics v1")
        return Status::error("metrics dump: missing 'sadapt-metrics "
                             "v1' header");
    std::vector<MetricSample> out;
    bool terminated = false;
    std::uint64_t line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        if (line == "end") {
            terminated = true;
            break;
        }
        std::istringstream ls(line);
        std::string kind, name;
        ls >> kind >> name;
        MetricSample s;
        s.name = name;
        auto fail = [&](const std::string &what) {
            return Status::error(str("metrics dump line ", line_no,
                                     ": ", what));
        };
        if (name.empty())
            return fail("missing metric name");
        if (kind == "counter") {
            s.kind = MetricKind::Counter;
            if (!(ls >> s.counterValue))
                return fail("bad counter value");
        } else if (kind == "gauge") {
            s.kind = MetricKind::Gauge;
            if (!(ls >> s.gaugeValue))
                return fail("bad gauge value");
        } else if (kind == "hist") {
            s.kind = MetricKind::Histogram;
            std::string kw;
            if (!(ls >> kw) || kw != "count" || !(ls >> s.histCount) ||
                !(ls >> kw) || kw != "sum" || !(ls >> s.histSum) ||
                !(ls >> kw))
                return fail("bad histogram line");
            // Optional quantile summary (emitted when count > 0).
            if (kw == "p50") {
                s.histHasQuantiles = true;
                if (!(ls >> s.histP50) || !(ls >> kw) || kw != "p90" ||
                    !(ls >> s.histP90) || !(ls >> kw) || kw != "p99" ||
                    !(ls >> s.histP99) || !(ls >> kw))
                    return fail("bad histogram quantiles");
            }
            if (kw != "buckets")
                return fail("bad histogram line");
            std::string pair;
            while (ls >> pair) {
                const auto colon = pair.find(':');
                if (colon == std::string::npos)
                    return fail("bad histogram bucket '" + pair + "'");
                std::size_t bucket = 0;
                std::uint64_t count = 0;
                try {
                    bucket = std::stoul(pair.substr(0, colon));
                    count = std::stoull(pair.substr(colon + 1));
                } catch (const std::exception &) {
                    return fail("bad histogram bucket '" + pair + "'");
                }
                if (bucket >= Histogram::numBuckets)
                    return fail("histogram bucket out of range");
                s.histBuckets.emplace_back(bucket, count);
            }
        } else {
            return fail("unknown metric kind '" + kind + "'");
        }
        out.push_back(std::move(s));
    }
    if (!terminated)
        return Status::error(
            "metrics dump: missing 'end' terminator (truncated?)");
    return out;
}

Result<std::vector<MetricSample>>
readMetricsTextFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Status::error("cannot open metrics dump: " + path);
    return readMetricsText(in);
}

} // namespace sadapt::obs
