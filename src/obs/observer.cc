#include "obs/observer.hh"

#include <fstream>
#include <ostream>

namespace sadapt::obs {

void
RunObserver::attachJournal(std::ostream &out)
{
    ownedOutV.reset();
    writerV = std::make_unique<JournalWriter>(out);
}

Status
RunObserver::openJournal(const std::string &path)
{
    auto out = std::make_unique<std::ofstream>(path);
    if (!*out)
        return Status::error("cannot create journal: " + path);
    ownedOutV = std::move(out);
    writerV = std::make_unique<JournalWriter>(*ownedOutV);
    return Status::ok();
}

void
RunObserver::emit(std::string path, std::string type,
                  std::vector<std::pair<std::string, FieldValue>> fields)
{
    if (!writerV)
        return;
    JournalEvent ev;
    ev.epoch = epochV;
    ev.simTime = simTimeV;
    ev.path = std::move(path);
    ev.type = std::move(type);
    ev.fields = std::move(fields);
    writerV->write(std::move(ev));
}

void
RunObserver::flush()
{
    if (ownedOutV)
        ownedOutV->flush();
}

} // namespace sadapt::obs
