/**
 * @file
 * Scoped host wall-time profiling for the trace-replay engine.
 *
 * SADAPT_PROF_SCOPE("sim/replay/heap") opens an RAII timer that
 * charges the scope's monotonic-clock duration to a named site in the
 * process-wide ProfRegistry. The whole facility compiles to nothing
 * unless the build enables it (cmake -DSADAPT_PROF=ON, which defines
 * SADAPT_ENABLE_PROF): wall-clock reads are host-dependent, so they
 * are kept out of default builds and out of every deterministic
 * artifact (metrics snapshots, journals). Profile data only ever
 * reaches the separate writeProfileText() dump.
 */

#ifndef SADAPT_OBS_PROF_HH
#define SADAPT_OBS_PROF_HH

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace sadapt::obs {

/** Aggregated wall-time for one profiled site. */
struct ProfSite
{
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t totalNs = 0;
};

/**
 * Process-wide accumulator of profiled scopes. Not thread-safe: the
 * replay engine is single-threaded, and profiling is a development
 * switch, not a production feature.
 */
class ProfRegistry
{
  public:
    static ProfRegistry &instance();

    void
    record(const std::string &name, std::uint64_t ns)
    {
        ProfSite &s = sites[name];
        s.name = name;
        ++s.calls;
        s.totalNs += ns;
    }

    /** All sites, sorted by name. */
    std::vector<ProfSite> snapshot() const;

    void reset() { sites.clear(); }

    /**
     * Human-readable dump:
     *
     *   sadapt-prof v1
     *   site sim/replay/heap calls 12 total_ns 48211
     *   end
     */
    void writeProfileText(std::ostream &out) const;

  private:
    ProfRegistry() = default;

    std::map<std::string, ProfSite> sites;
};

/** RAII timer charging its lifetime to a ProfRegistry site. */
class ProfScope
{
  public:
    explicit ProfScope(const char *name)
        : nameV(name), startV(std::chrono::steady_clock::now())
    {
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

    ~ProfScope()
    {
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - startV)
                .count();
        ProfRegistry::instance().record(
            nameV, static_cast<std::uint64_t>(ns < 0 ? 0 : ns));
    }

  private:
    const char *nameV;
    std::chrono::steady_clock::time_point startV;
};

} // namespace sadapt::obs

#define SADAPT_PROF_CONCAT2(a, b) a##b
#define SADAPT_PROF_CONCAT(a, b) SADAPT_PROF_CONCAT2(a, b)

#ifdef SADAPT_ENABLE_PROF
#define SADAPT_PROF_SCOPE(name)                                       \
    ::sadapt::obs::ProfScope SADAPT_PROF_CONCAT(sadapt_prof_scope_,   \
                                                __LINE__)(name)
#else
#define SADAPT_PROF_SCOPE(name)                                       \
    do {                                                              \
    } while (false)
#endif

#endif // SADAPT_OBS_PROF_HH
