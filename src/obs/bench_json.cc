#include "obs/bench_json.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

namespace sadapt::obs {

namespace {

/**
 * Minimal JSON value model — just enough to read BenchReport output.
 * Numbers are kept as doubles (bench reports never need 64-bit
 * exactness beyond 2^53) and objects as ordered key/value pairs.
 */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> members;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : members)
            if (k == key)
                return &v;
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(std::string_view text)
        : text(text)
    {
    }

    Result<JsonValue>
    parse()
    {
        JsonValue v;
        Status s = parseValue(v);
        if (!s.isOk())
            return s;
        skipWs();
        if (pos != text.size())
            return fail("trailing content after JSON value");
        return v;
    }

  private:
    std::string_view text;
    std::size_t pos = 0;

    Status
    fail(const std::string &what) const
    {
        return Status::error("bench json: " + what + " at byte " +
                             std::to_string(pos));
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    Status
    parseValue(JsonValue &out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"')
            return parseString(out);
        if (c == 't' || c == 'f')
            return parseBool(out);
        if (c == 'n')
            return parseNull(out);
        return parseNumber(out);
    }

    Status
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos; // '{'
        if (consume('}'))
            return Status::ok();
        while (true) {
            skipWs();
            JsonValue key;
            if (pos >= text.size() || text[pos] != '"')
                return fail("expected object key");
            SADAPT_TRY_STATUS(parseString(key));
            if (!consume(':'))
                return fail("expected ':' after object key");
            JsonValue value;
            SADAPT_TRY_STATUS(parseValue(value));
            out.members.emplace_back(std::move(key.string),
                                     std::move(value));
            if (consume(','))
                continue;
            if (consume('}'))
                return Status::ok();
            return fail("expected ',' or '}' in object");
        }
    }

    Status
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos; // '['
        if (consume(']'))
            return Status::ok();
        while (true) {
            JsonValue value;
            SADAPT_TRY_STATUS(parseValue(value));
            out.items.push_back(std::move(value));
            if (consume(','))
                continue;
            if (consume(']'))
                return Status::ok();
            return fail("expected ',' or ']' in array");
        }
    }

    Status
    parseString(JsonValue &out)
    {
        out.kind = JsonValue::Kind::String;
        ++pos; // '"'
        std::string s;
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c != '\\') {
                s += c;
                continue;
            }
            if (pos >= text.size())
                return fail("unterminated escape");
            const char esc = text[pos++];
            switch (esc) {
            case '"': s += '"'; break;
            case '\\': s += '\\'; break;
            case '/': s += '/'; break;
            case 'n': s += '\n'; break;
            case 't': s += '\t'; break;
            case 'r': s += '\r'; break;
            case 'b': s += '\b'; break;
            case 'f': s += '\f'; break;
            case 'u': {
                if (pos + 4 > text.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // Bench reports only ever escape controls and ASCII;
                // anything beyond Latin-1 would need surrogate
                // handling this reader deliberately omits.
                if (code > 0xff)
                    return fail("\\u escape beyond Latin-1");
                s += static_cast<char>(code);
                break;
            }
            default:
                return fail("unknown escape");
            }
        }
        if (pos >= text.size())
            return fail("unterminated string");
        ++pos; // closing '"'
        out.string = std::move(s);
        return Status::ok();
    }

    Status
    parseBool(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Bool;
        if (text.substr(pos, 4) == "true") {
            out.boolean = true;
            pos += 4;
            return Status::ok();
        }
        if (text.substr(pos, 5) == "false") {
            out.boolean = false;
            pos += 5;
            return Status::ok();
        }
        return fail("bad literal");
    }

    Status
    parseNull(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Null;
        if (text.substr(pos, 4) == "null") {
            pos += 4;
            return Status::ok();
        }
        return fail("bad literal");
    }

    Status
    parseNumber(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Number;
        const std::size_t start = pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) !=
                    0 ||
                text[pos] == '-' || text[pos] == '+' ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E'))
            ++pos;
        if (pos == start)
            return fail("expected a value");
        const std::string tok(text.substr(start, pos - start));
        char *end = nullptr;
        out.number = std::strtod(tok.c_str(), &end);
        if (end == nullptr || *end != '\0')
            return fail("malformed number '" + tok + "'");
        return Status::ok();
    }
};

double
numberOr(const JsonValue &obj, const std::string &key, double fallback)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr || v->kind != JsonValue::Kind::Number)
        return fallback;
    return v->number;
}

std::uint64_t
countOr(const JsonValue &obj, const std::string &key,
        std::uint64_t fallback)
{
    const double d = numberOr(obj, key,
                              static_cast<double>(fallback));
    if (d < 0)
        return fallback;
    return static_cast<std::uint64_t>(d);
}

std::string
stringOr(const JsonValue &obj, const std::string &key,
         const std::string &fallback)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr || v->kind != JsonValue::Kind::String)
        return fallback;
    return v->string;
}

} // namespace

Result<BenchRun>
parseBenchJson(std::string_view text)
{
    JsonParser parser(text);
    Result<JsonValue> parsed = parser.parse();
    if (!parsed.isOk())
        return parsed.status();
    const JsonValue &root = parsed.value();
    if (root.kind != JsonValue::Kind::Object)
        return Status::error(
            "bench json: top-level value is not an object");

    BenchRun run;
    run.bench = stringOr(root, "bench", "");
    if (run.bench.empty())
        return Status::error("bench json: missing \"bench\" name");
    run.gitRev = stringOr(root, "git_rev", "unknown");
    run.hostWallSeconds = numberOr(root, "host_wall_seconds", 0.0);
    run.sweepWallSeconds = numberOr(root, "sweep_wall_seconds", 0.0);
    run.configsSimulated = countOr(root, "configs_simulated", 0);
    run.scale = numberOr(root, "scale", 0.0);
    run.samples = countOr(root, "samples", 0);
    run.jobs = countOr(root, "jobs", 0);
    run.traceFormat = stringOr(root, "trace_format", "columnar");
    run.traceDecodeSeconds =
        numberOr(root, "trace_decode_seconds", 0.0);
    run.serveSessions = countOr(root, "serve_sessions", 0);
    run.serveScale = numberOr(root, "serve_scale", 0.0);
    run.sessionsPerSecond =
        numberOr(root, "sessions_per_second", 0.0);
    run.decisionP50Ms = numberOr(root, "decision_p50_ms", 0.0);
    run.decisionP99Ms = numberOr(root, "decision_p99_ms", 0.0);
    run.serveEpochsPerSecond =
        numberOr(root, "serve_epochs_per_second", 0.0);
    run.fabricWorkers = countOr(root, "fabric_workers", 0);
    run.fabricLeasesReclaimed =
        countOr(root, "fabric_leases_reclaimed", 0);
    run.storeHits = countOr(root, "store_hits", 0);
    run.storeMisses = countOr(root, "store_misses", 0);
    run.storePath = stringOr(root, "store_path", "");

    if (const JsonValue *results = root.find("results");
        results != nullptr &&
        results->kind == JsonValue::Kind::Array) {
        for (const JsonValue &item : results->items) {
            if (item.kind != JsonValue::Kind::Object)
                continue;
            BenchResultEntry e;
            e.kernel = stringOr(item, "kernel", "");
            e.config = stringOr(item, "config", "");
            e.gflops = numberOr(item, "gflops", 0.0);
            e.gflopsPerWatt =
                numberOr(item, "gflops_per_watt", 0.0);
            run.results.push_back(std::move(e));
        }
    }
    return run;
}

Result<BenchRun>
readBenchJsonFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Status::error("cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    Result<BenchRun> run = parseBenchJson(buf.str());
    if (!run.isOk())
        return Status::error(path + ": " + run.message());
    run.value().sourcePath = path;
    return run;
}

double
benchWallSeconds(const BenchRun &run)
{
    return run.sweepWallSeconds > 0.0 ? run.sweepWallSeconds
                                      : run.hostWallSeconds;
}

double
benchGeomeanGflops(const BenchRun &run)
{
    double logSum = 0.0;
    std::size_t n = 0;
    for (const BenchResultEntry &e : run.results) {
        if (e.gflops <= 0.0)
            continue;
        logSum += std::log(e.gflops);
        ++n;
    }
    return n == 0 ? 0.0
                  : std::exp(logSum / static_cast<double>(n));
}

std::size_t
bestRunIndex(const std::vector<BenchRun> &runs)
{
    std::size_t best = static_cast<std::size_t>(-1);
    double bestWall = 0.0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const double wall = benchWallSeconds(runs[i]);
        if (best == static_cast<std::size_t>(-1) ||
            wall < bestWall) {
            best = i;
            bestWall = wall;
        }
    }
    return best;
}

bool
benchComparable(const BenchRun &a, const BenchRun &b)
{
    return a.bench == b.bench && a.scale == b.scale &&
           a.samples == b.samples && a.traceFormat == b.traceFormat &&
           a.serveSessions == b.serveSessions &&
           a.serveScale == b.serveScale;
}

} // namespace sadapt::obs
