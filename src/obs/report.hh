/**
 * @file
 * Rendering of observability artifacts (journal + metrics snapshot)
 * into the human-readable report and the Chrome-trace export that
 * tools/sadapt_report.cc serves. Library functions so tests can
 * golden-file the output without spawning the CLI.
 */

#ifndef SADAPT_OBS_REPORT_HH
#define SADAPT_OBS_REPORT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/journal.hh"
#include "obs/metrics.hh"

namespace sadapt::obs {

/**
 * One decoded fabric lease record, handed in by the caller (the CLI
 * scans `w*.lease` files with the store codec; tests construct these
 * directly so the renderers stay free of store/fabric dependencies).
 */
struct LeaseEntry
{
    std::uint32_t worker = 0;  //!< writer of the record (0=coordinator)
    std::string op;            //!< "claim", "renew", "complete", ...
    std::uint32_t config = 0;  //!< cell (config code); 0 if heartbeat
    std::uint32_t peer = 0;    //!< reclaim: worker whose lease expired
    std::uint64_t seq = 0;     //!< per-writer strictly increasing
    std::uint64_t tickMs = 0;  //!< monotonic-clock milliseconds
    bool heartbeat = false;    //!< idle-liveness sentinel, not a cell
};

/** Rendering switches of the full report. */
struct ReportOptions
{
    /** Render the replay-profile cost breakdown (profile/ metrics). */
    bool profile = false;
};

/**
 * Per-epoch decision timeline: every epoch on one line, with the
 * predictions, hysteresis decisions, reconfigurations and guard /
 * watchdog activity of that epoch indented beneath it.
 */
void renderTimeline(const std::vector<JournalEvent> &events,
                    std::ostream &out);

/**
 * Reconfiguration summary table: per parameter, how many switches the
 * predictor proposed and how many the hysteresis policy accepted or
 * vetoed, plus the applied-reconfiguration totals.
 */
void renderReconfigSummary(const std::vector<JournalEvent> &events,
                           std::ostream &out);

/** Metric roll-ups grouped by top-level component. */
void renderMetricRollups(const std::vector<MetricSample> &metrics,
                         std::ostream &out);

/**
 * Epoch-store cache statistics, rendered from "store" journal events
 * when present and from store/ metric samples otherwise. Returns
 * whether anything was rendered: a run without a store (no store
 * events, no store/ metrics) produces no section at all, keeping
 * store-less reports byte-identical to pre-store builds.
 */
bool renderStoreSection(const std::vector<JournalEvent> &events,
                        const std::vector<MetricSample> &metrics,
                        std::ostream &out);

/**
 * Replay-profile cost breakdown rendered from profile/ metric samples
 * (exported per replay by the simulator's deterministic profiler):
 * op-kind mix, per-component event tallies, per-phase attribution and
 * the attributed-coverage line. Returns whether anything was rendered
 * (false when no profile/ samples are present).
 */
bool renderProfileSection(const std::vector<MetricSample> &metrics,
                          std::ostream &out);

/**
 * Fabric sections rendered from decoded lease records: the per-cell
 * lease timeline (claims, reclaims, completions, quarantines, with
 * ticks relative to the earliest record) and the per-worker
 * utilization roll-up. Returns whether anything was rendered (false
 * when `leases` is empty).
 */
bool renderFabricSection(const std::vector<LeaseEntry> &leases,
                         std::ostream &out);

/**
 * The full report: run header, timeline, reconfiguration summary,
 * store/fabric/profile sections (when their inputs are present) and
 * metric roll-ups. Any input may be empty.
 */
void renderReport(const std::vector<JournalEvent> &events,
                  const std::vector<MetricSample> &metrics,
                  const std::vector<LeaseEntry> &leases,
                  const ReportOptions &opts, std::ostream &out);

/** renderReport() with no lease records and default options. */
void renderReport(const std::vector<JournalEvent> &events,
                  const std::vector<MetricSample> &metrics,
                  std::ostream &out);

/**
 * Machine-readable report: the same content as renderReport() as one
 * JSON document, mirroring the `sadapt_check --format=json` idiom
 * (top-level "version", fixed two-space indentation, name-sorted
 * metric entries). Byte-stable: identical inputs produce identical
 * bytes, so the output can be golden-filed and diffed across runs.
 */
void renderReportJson(const std::vector<JournalEvent> &events,
                      const std::vector<MetricSample> &metrics,
                      const std::vector<LeaseEntry> &leases,
                      const ReportOptions &opts, std::ostream &out);

/**
 * Chrome-trace (chrome://tracing / Perfetto "traceEvents") JSON:
 * epochs become duration ("X") slices on a virtual track and applied
 * reconfigurations become instant ("i") events, with simulated time
 * mapped to microseconds. When lease records are supplied, each
 * fabric worker additionally gets its own track (process "fabric",
 * one thread per worker) with claim-to-completion slices per cell and
 * instants for reclaims and quarantines, on the lease tick timebase.
 */
void writeChromeTrace(const std::vector<JournalEvent> &events,
                      const std::vector<LeaseEntry> &leases,
                      std::ostream &out);

/** writeChromeTrace() without fabric worker tracks. */
void writeChromeTrace(const std::vector<JournalEvent> &events,
                      std::ostream &out);

} // namespace sadapt::obs

#endif // SADAPT_OBS_REPORT_HH
