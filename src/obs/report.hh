/**
 * @file
 * Rendering of observability artifacts (journal + metrics snapshot)
 * into the human-readable report and the Chrome-trace export that
 * tools/sadapt_report.cc serves. Library functions so tests can
 * golden-file the output without spawning the CLI.
 */

#ifndef SADAPT_OBS_REPORT_HH
#define SADAPT_OBS_REPORT_HH

#include <iosfwd>
#include <vector>

#include "obs/journal.hh"
#include "obs/metrics.hh"

namespace sadapt::obs {

/**
 * Per-epoch decision timeline: every epoch on one line, with the
 * predictions, hysteresis decisions, reconfigurations and guard /
 * watchdog activity of that epoch indented beneath it.
 */
void renderTimeline(const std::vector<JournalEvent> &events,
                    std::ostream &out);

/**
 * Reconfiguration summary table: per parameter, how many switches the
 * predictor proposed and how many the hysteresis policy accepted or
 * vetoed, plus the applied-reconfiguration totals.
 */
void renderReconfigSummary(const std::vector<JournalEvent> &events,
                           std::ostream &out);

/** Metric roll-ups grouped by top-level component. */
void renderMetricRollups(const std::vector<MetricSample> &metrics,
                         std::ostream &out);

/**
 * Epoch-store cache statistics, rendered from "store" journal events
 * when present and from store/ metric samples otherwise. Returns
 * whether anything was rendered: a run without a store (no store
 * events, no store/ metrics) produces no section at all, keeping
 * store-less reports byte-identical to pre-store builds.
 */
bool renderStoreSection(const std::vector<JournalEvent> &events,
                        const std::vector<MetricSample> &metrics,
                        std::ostream &out);

/**
 * The full report: run header, timeline, reconfiguration summary and
 * metric roll-ups. Either input may be empty.
 */
void renderReport(const std::vector<JournalEvent> &events,
                  const std::vector<MetricSample> &metrics,
                  std::ostream &out);

/**
 * Chrome-trace (chrome://tracing / Perfetto "traceEvents") JSON:
 * epochs become duration ("X") slices on a virtual track and applied
 * reconfigurations become instant ("i") events, with simulated time
 * mapped to microseconds.
 */
void writeChromeTrace(const std::vector<JournalEvent> &events,
                      std::ostream &out);

} // namespace sadapt::obs

#endif // SADAPT_OBS_REPORT_HH
