#include "sparse/io.hh"

#include <cmath>
#include <cstdlib>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/logging.hh"
#include "sparse/coo.hh"

namespace sadapt {

namespace {

using MatrixResult = Result<CsrMatrix>;

MatrixResult
parseError(const std::string &what)
{
    return MatrixResult::error("matrix market: " + what);
}

/**
 * Describe the token at the stream's failure point, for error
 * messages ("got 'abc'" vs a bare truncation).
 */
std::string
failedToken(std::istream &in)
{
    in.clear();
    std::string token;
    if (in >> token)
        return "non-numeric token '" + token + "'";
    return "truncated entry list";
}

} // namespace

Result<CsrMatrix>
tryReadMatrixMarket(std::istream &in)
{
    std::string line;
    if (!std::getline(in, line))
        return parseError("empty stream");
    std::istringstream banner(line);
    std::string mm, object, format, field, symmetry;
    banner >> mm >> object >> format >> field >> symmetry;
    if (mm != "%%MatrixMarket" || object != "matrix")
        return parseError("bad banner: " + line);
    if (format != "coordinate")
        return parseError("only coordinate format supported");
    const bool pattern = field == "pattern";
    if (field != "real" && field != "integer" && !pattern)
        return parseError("unsupported field type: " + field);
    const bool symmetric = symmetry == "symmetric";
    if (!symmetric && symmetry != "general")
        return parseError("unsupported symmetry: " + symmetry);

    // Skip comments.
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '%')
            break;
    }
    std::istringstream header(line);
    std::uint64_t rows = 0, cols = 0, nnz = 0;
    if (!(header >> rows >> cols >> nnz))
        return parseError("bad size line: " + line);

    // Indices are stored as 32-bit; a size line beyond that (or an
    // entry count no matrix of this shape can hold) is either
    // corruption or a matrix this simulator cannot represent. Reject
    // it here instead of silently truncating the casts below.
    constexpr std::uint64_t maxDim =
        std::numeric_limits<std::uint32_t>::max();
    if (rows > maxDim || cols > maxDim) {
        return parseError(
            str("dimensions ", rows, " x ", cols,
                " overflow the 32-bit index space"));
    }
    if ((rows == 0 || cols == 0) && nnz > 0)
        return parseError("nonzero entries in an empty matrix");
    if (rows > 0 && nnz > rows * cols) { // product fits in 64 bits
        return parseError(
            str("entry count ", nnz, " exceeds matrix capacity ",
                rows, " x ", cols));
    }

    CooMatrix coo(static_cast<std::uint32_t>(rows),
                  static_cast<std::uint32_t>(cols));
    for (std::uint64_t i = 0; i < nnz; ++i) {
        std::uint64_t r = 0, c = 0;
        double v = 1.0;
        if (!(in >> r >> c))
            return parseError(failedToken(in));
        if (!pattern) {
            // istream's num_get rejects "nan"/"inf"; read the token
            // and parse with strtod so they get the right diagnosis.
            std::string tok;
            if (!(in >> tok))
                return parseError("truncated entry list");
            char *end = nullptr;
            v = std::strtod(tok.c_str(), &end);
            if (end == tok.c_str() || *end != '\0')
                return parseError("non-numeric token '" + tok + "'");
            if (!std::isfinite(v)) {
                return parseError(
                    str("non-finite value at entry ", i + 1));
            }
        }
        if (r < 1 || r > rows || c < 1 || c > cols)
            return parseError("entry out of bounds");
        coo.add(static_cast<std::uint32_t>(r - 1),
                static_cast<std::uint32_t>(c - 1), v);
        if (symmetric && r != c)
            coo.add(static_cast<std::uint32_t>(c - 1),
                    static_cast<std::uint32_t>(r - 1), v);
    }
    return CsrMatrix(coo);
}

Result<CsrMatrix>
tryReadMatrixMarketFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return parseError("cannot open " + path);
    return tryReadMatrixMarket(in);
}

CsrMatrix
readMatrixMarket(std::istream &in)
{
    return tryReadMatrixMarket(in).valueOrDie();
}

CsrMatrix
readMatrixMarketFile(const std::string &path)
{
    return tryReadMatrixMarketFile(path).valueOrDie();
}

void
writeMatrixMarket(const CsrMatrix &m, std::ostream &out)
{
    out.precision(17); // round-trip exact for doubles
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << m.rows() << ' ' << m.cols() << ' ' << m.nnz() << '\n';
    for (std::uint32_t r = 0; r < m.rows(); ++r) {
        auto cols = m.rowCols(r);
        auto vals = m.rowVals(r);
        for (std::size_t i = 0; i < cols.size(); ++i)
            out << (r + 1) << ' ' << (cols[i] + 1) << ' ' << vals[i]
                << '\n';
    }
}

void
writeMatrixMarketFile(const CsrMatrix &m, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("matrix market: cannot open " + path + " for writing");
    writeMatrixMarket(m, out);
}

} // namespace sadapt
