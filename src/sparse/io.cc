#include "sparse/io.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "sparse/coo.hh"

namespace sadapt {

CsrMatrix
readMatrixMarket(std::istream &in)
{
    std::string line;
    if (!std::getline(in, line))
        fatal("matrix market: empty stream");
    std::istringstream banner(line);
    std::string mm, object, format, field, symmetry;
    banner >> mm >> object >> format >> field >> symmetry;
    if (mm != "%%MatrixMarket" || object != "matrix")
        fatal("matrix market: bad banner: " + line);
    if (format != "coordinate")
        fatal("matrix market: only coordinate format supported");
    const bool pattern = field == "pattern";
    if (field != "real" && field != "integer" && !pattern)
        fatal("matrix market: unsupported field type: " + field);
    const bool symmetric = symmetry == "symmetric";
    if (!symmetric && symmetry != "general")
        fatal("matrix market: unsupported symmetry: " + symmetry);

    // Skip comments.
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '%')
            break;
    }
    std::istringstream header(line);
    std::uint64_t rows = 0, cols = 0, nnz = 0;
    if (!(header >> rows >> cols >> nnz))
        fatal("matrix market: bad size line: " + line);

    CooMatrix coo(static_cast<std::uint32_t>(rows),
                  static_cast<std::uint32_t>(cols));
    for (std::uint64_t i = 0; i < nnz; ++i) {
        std::uint64_t r = 0, c = 0;
        double v = 1.0;
        if (!(in >> r >> c))
            fatal("matrix market: truncated entry list");
        if (!pattern && !(in >> v))
            fatal("matrix market: truncated entry list");
        if (r < 1 || r > rows || c < 1 || c > cols)
            fatal("matrix market: entry out of bounds");
        coo.add(static_cast<std::uint32_t>(r - 1),
                static_cast<std::uint32_t>(c - 1), v);
        if (symmetric && r != c)
            coo.add(static_cast<std::uint32_t>(c - 1),
                    static_cast<std::uint32_t>(r - 1), v);
    }
    return CsrMatrix(coo);
}

CsrMatrix
readMatrixMarketFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("matrix market: cannot open " + path);
    return readMatrixMarket(in);
}

void
writeMatrixMarket(const CsrMatrix &m, std::ostream &out)
{
    out.precision(17); // round-trip exact for doubles
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << m.rows() << ' ' << m.cols() << ' ' << m.nnz() << '\n';
    for (std::uint32_t r = 0; r < m.rows(); ++r) {
        auto cols = m.rowCols(r);
        auto vals = m.rowVals(r);
        for (std::size_t i = 0; i < cols.size(); ++i)
            out << (r + 1) << ' ' << (cols[i] + 1) << ' ' << vals[i]
                << '\n';
    }
}

void
writeMatrixMarketFile(const CsrMatrix &m, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("matrix market: cannot open " + path + " for writing");
    writeMatrixMarket(m, out);
}

} // namespace sadapt
