/**
 * @file
 * Reference (host-side, untimed) implementations of the sparse kernels.
 *
 * These are the golden models: the trace-emitting device kernels in
 * src/kernels/ must produce numerically identical results.
 */

#ifndef SADAPT_SPARSE_REFERENCE_HH
#define SADAPT_SPARSE_REFERENCE_HH

#include "sparse/csc.hh"
#include "sparse/csr.hh"
#include "sparse/sparse_vector.hh"

namespace sadapt {

/**
 * Reference SpGEMM: C = A * B, with A in CSC and B in CSR, computed via
 * outer products (the algorithm of OuterSPACE / Transmuter).
 */
CsrMatrix referenceSpGemm(const CscMatrix &a, const CsrMatrix &b);

/**
 * Reference SpMSpV: y = A * x with A in CSC and x sparse.
 */
SparseVector referenceSpMSpV(const CscMatrix &a, const SparseVector &x);

/**
 * Reference dense GEMM used to validate the regular-kernel ablation:
 * C = A * B for row-major dense matrices.
 */
std::vector<double> referenceGemm(const std::vector<double> &a,
                                  const std::vector<double> &b,
                                  std::uint32_t m, std::uint32_t k,
                                  std::uint32_t n);

/**
 * Reference 2D convolution (single channel, valid padding) used to
 * validate the Conv device kernel.
 */
std::vector<double> referenceConv2d(const std::vector<double> &image,
                                    std::uint32_t height,
                                    std::uint32_t width,
                                    const std::vector<double> &filter,
                                    std::uint32_t fsize);

} // namespace sadapt

#endif // SADAPT_SPARSE_REFERENCE_HH
