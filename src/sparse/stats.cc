#include "sparse/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sadapt {

MatrixStats
computeStats(const CsrMatrix &m)
{
    MatrixStats s;
    s.rows = m.rows();
    s.cols = m.cols();
    s.nnz = m.nnz();
    s.density = m.density();
    if (s.rows == 0 || s.nnz == 0)
        return s;

    std::vector<std::uint32_t> row_nnz(s.rows);
    double sum = 0.0;
    for (std::uint32_t r = 0; r < s.rows; ++r) {
        row_nnz[r] = m.rowNnz(r);
        sum += row_nnz[r];
        s.maxRowNnz = std::max(s.maxRowNnz, row_nnz[r]);
    }
    s.meanRowNnz = sum / s.rows;

    double var = 0.0;
    for (auto n : row_nnz) {
        const double d = n - s.meanRowNnz;
        var += d * d;
    }
    var /= s.rows;
    s.rowNnzCv = s.meanRowNnz > 0.0 ? std::sqrt(var) / s.meanRowNnz : 0.0;

    // Gini coefficient via the sorted-rank formula.
    std::sort(row_nnz.begin(), row_nnz.end());
    double weighted = 0.0;
    for (std::uint32_t i = 0; i < s.rows; ++i)
        weighted += static_cast<double>(i + 1) * row_nnz[i];
    s.rowNnzGini =
        (2.0 * weighted) / (s.rows * sum) -
        (static_cast<double>(s.rows) + 1.0) / s.rows;

    double band_sum = 0.0;
    std::uint64_t near_diag = 0;
    const double diag_window = std::max(1.0, 0.01 * s.rows);
    for (std::uint32_t r = 0; r < s.rows; ++r) {
        for (std::uint32_t c : m.rowCols(r)) {
            const double d = std::abs(
                static_cast<double>(c) - static_cast<double>(r));
            band_sum += d;
            if (d <= diag_window)
                ++near_diag;
        }
    }
    s.normalizedBandwidth =
        band_sum / static_cast<double>(s.nnz) / std::max(1u, s.rows);
    s.diagonalLocality =
        static_cast<double>(near_diag) / static_cast<double>(s.nnz);
    return s;
}

std::string
MatrixStats::summary() const
{
    return str(rows, "x", cols, " nnz=", nnz,
               " density=", density,
               " gini=", rowNnzGini,
               " diagLoc=", diagonalLocality);
}

} // namespace sadapt
