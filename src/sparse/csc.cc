#include "sparse/csc.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sparse/coo.hh"
#include "sparse/csr.hh"

namespace sadapt {

CscMatrix::CscMatrix(const CooMatrix &coo)
{
    buildFromCoo(coo);
}

CscMatrix::CscMatrix(const CsrMatrix &csr)
{
    buildFromCoo(csr.toCoo());
}

void
CscMatrix::buildFromCoo(const CooMatrix &coo)
{
    nRows = coo.rows();
    nCols = coo.cols();
    CooMatrix sorted = coo;
    sorted.coalesce();
    // Column-major counting sort over the row-major coalesced triplets.
    colPtrV.assign(nCols + 1, 0);
    for (const auto &t : sorted.triplets())
        colPtrV[t.col + 1]++;
    for (std::uint32_t c = 0; c < nCols; ++c)
        colPtrV[c + 1] += colPtrV[c];
    rowIdx.resize(sorted.nnz());
    vals.resize(sorted.nnz());
    std::vector<std::uint64_t> cursor(colPtrV.begin(), colPtrV.end() - 1);
    for (const auto &t : sorted.triplets()) {
        const std::uint64_t slot = cursor[t.col]++;
        rowIdx[slot] = t.row;
        vals[slot] = t.value;
    }
    // Row-major iteration of sorted triplets yields sorted rows per column.
}

double
CscMatrix::density() const
{
    if (nRows == 0 || nCols == 0)
        return 0.0;
    return static_cast<double>(nnz()) /
        (static_cast<double>(nRows) * nCols);
}

std::span<const std::uint32_t>
CscMatrix::colRows(std::uint32_t c) const
{
    return {rowIdx.data() + colPtrV[c], colPtrV[c + 1] - colPtrV[c]};
}

std::span<const double>
CscMatrix::colVals(std::uint32_t c) const
{
    return {vals.data() + colPtrV[c], colPtrV[c + 1] - colPtrV[c]};
}

CooMatrix
CscMatrix::toCoo() const
{
    CooMatrix coo(nRows, nCols);
    for (std::uint32_t c = 0; c < nCols; ++c)
        for (std::uint64_t i = colPtrV[c]; i < colPtrV[c + 1]; ++i)
            coo.add(rowIdx[i], c, vals[i]);
    return coo;
}

} // namespace sadapt
