#include "sparse/reference.hh"

#include "common/logging.hh"
#include "sparse/coo.hh"

namespace sadapt {

CsrMatrix
referenceSpGemm(const CscMatrix &a, const CsrMatrix &b)
{
    SADAPT_ASSERT(a.cols() == b.rows(), "SpGEMM inner dimension mismatch");
    CooMatrix c(a.rows(), b.cols());
    // Outer-product formulation: for each k, (column k of A) x (row k of B)
    for (std::uint32_t k = 0; k < a.cols(); ++k) {
        auto a_rows = a.colRows(k);
        auto a_vals = a.colVals(k);
        auto b_cols = b.rowCols(k);
        auto b_vals = b.rowVals(k);
        for (std::size_t i = 0; i < a_rows.size(); ++i)
            for (std::size_t j = 0; j < b_cols.size(); ++j)
                c.add(a_rows[i], b_cols[j], a_vals[i] * b_vals[j]);
    }
    c.coalesce();
    return CsrMatrix(c);
}

SparseVector
referenceSpMSpV(const CscMatrix &a, const SparseVector &x)
{
    SADAPT_ASSERT(a.cols() == x.dim(), "SpMSpV dimension mismatch");
    std::vector<SparseVector::Entry> raw;
    for (const auto &xe : x.entries()) {
        auto rows = a.colRows(xe.index);
        auto vals = a.colVals(xe.index);
        for (std::size_t i = 0; i < rows.size(); ++i)
            raw.push_back({rows[i], vals[i] * xe.value});
    }
    return SparseVector(a.rows(), std::move(raw));
}

std::vector<double>
referenceGemm(const std::vector<double> &a, const std::vector<double> &b,
              std::uint32_t m, std::uint32_t k, std::uint32_t n)
{
    SADAPT_ASSERT(a.size() == std::size_t(m) * k, "GEMM A shape mismatch");
    SADAPT_ASSERT(b.size() == std::size_t(k) * n, "GEMM B shape mismatch");
    std::vector<double> c(std::size_t(m) * n, 0.0);
    for (std::uint32_t i = 0; i < m; ++i)
        for (std::uint32_t p = 0; p < k; ++p) {
            const double av = a[std::size_t(i) * k + p];
            for (std::uint32_t j = 0; j < n; ++j)
                c[std::size_t(i) * n + j] += av * b[std::size_t(p) * n + j];
        }
    return c;
}

std::vector<double>
referenceConv2d(const std::vector<double> &image, std::uint32_t height,
                std::uint32_t width, const std::vector<double> &filter,
                std::uint32_t fsize)
{
    SADAPT_ASSERT(image.size() == std::size_t(height) * width,
                  "conv image shape mismatch");
    SADAPT_ASSERT(filter.size() == std::size_t(fsize) * fsize,
                  "conv filter shape mismatch");
    SADAPT_ASSERT(height >= fsize && width >= fsize,
                  "conv image smaller than filter");
    const std::uint32_t oh = height - fsize + 1;
    const std::uint32_t ow = width - fsize + 1;
    std::vector<double> out(std::size_t(oh) * ow, 0.0);
    for (std::uint32_t y = 0; y < oh; ++y)
        for (std::uint32_t x = 0; x < ow; ++x) {
            double acc = 0.0;
            for (std::uint32_t fy = 0; fy < fsize; ++fy)
                for (std::uint32_t fx = 0; fx < fsize; ++fx)
                    acc += image[std::size_t(y + fy) * width + (x + fx)] *
                        filter[std::size_t(fy) * fsize + fx];
            out[std::size_t(y) * ow + x] = acc;
        }
    return out;
}

} // namespace sadapt
