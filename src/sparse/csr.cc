#include "sparse/csr.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sparse/coo.hh"

namespace sadapt {

CsrMatrix::CsrMatrix(const CooMatrix &coo)
    : nRows(coo.rows()), nCols(coo.cols())
{
    CooMatrix sorted = coo;
    sorted.coalesce();
    rowPtrV.assign(nRows + 1, 0);
    colIdx.reserve(sorted.nnz());
    vals.reserve(sorted.nnz());
    for (const auto &t : sorted.triplets()) {
        rowPtrV[t.row + 1]++;
        colIdx.push_back(t.col);
        vals.push_back(t.value);
    }
    for (std::uint32_t r = 0; r < nRows; ++r)
        rowPtrV[r + 1] += rowPtrV[r];
}

double
CsrMatrix::density() const
{
    if (nRows == 0 || nCols == 0)
        return 0.0;
    return static_cast<double>(nnz()) /
        (static_cast<double>(nRows) * nCols);
}

std::span<const std::uint32_t>
CsrMatrix::rowCols(std::uint32_t r) const
{
    return {colIdx.data() + rowPtrV[r], rowPtrV[r + 1] - rowPtrV[r]};
}

std::span<const double>
CsrMatrix::rowVals(std::uint32_t r) const
{
    return {vals.data() + rowPtrV[r], rowPtrV[r + 1] - rowPtrV[r]};
}

double
CsrMatrix::at(std::uint32_t r, std::uint32_t c) const
{
    SADAPT_ASSERT(r < nRows && c < nCols, "CSR index out of bounds");
    auto cols = rowCols(r);
    auto it = std::lower_bound(cols.begin(), cols.end(), c);
    if (it == cols.end() || *it != c)
        return 0.0;
    return vals[rowPtrV[r] + (it - cols.begin())];
}

CooMatrix
CsrMatrix::toCoo() const
{
    CooMatrix coo(nRows, nCols);
    for (std::uint32_t r = 0; r < nRows; ++r)
        for (std::uint64_t i = rowPtrV[r]; i < rowPtrV[r + 1]; ++i)
            coo.add(r, colIdx[i], vals[i]);
    return coo;
}

CsrMatrix
CsrMatrix::transposed() const
{
    return CsrMatrix(toCoo().transposed());
}

} // namespace sadapt
