/**
 * @file
 * Coordinate-format sparse matrix, used as a construction staging format.
 */

#ifndef SADAPT_SPARSE_COO_HH
#define SADAPT_SPARSE_COO_HH

#include <cstdint>
#include <vector>

namespace sadapt {

/** One nonzero entry of a COO matrix. */
struct Triplet
{
    std::uint32_t row;
    std::uint32_t col;
    double value;
};

/**
 * A sparse matrix in coordinate (triplet) format. Duplicate entries are
 * combined (summed) on demand; the triplet list is otherwise unordered.
 */
class CooMatrix
{
  public:
    CooMatrix() = default;

    /** Create an empty rows x cols matrix. */
    CooMatrix(std::uint32_t rows, std::uint32_t cols);

    /** Append one nonzero. Duplicates are allowed until coalesce(). */
    void add(std::uint32_t row, std::uint32_t col, double value);

    /**
     * Sort entries in row-major order and sum duplicates. Entries whose
     * combined value is exactly zero are dropped.
     */
    void coalesce();

    std::uint32_t rows() const { return nRows; }
    std::uint32_t cols() const { return nCols; }

    /** @return number of stored triplets (call coalesce() first for NNZ). */
    std::size_t nnz() const { return entries.size(); }

    const std::vector<Triplet> &triplets() const { return entries; }

    /** @return the transpose (swaps row/col of every entry). */
    CooMatrix transposed() const;

  private:
    std::uint32_t nRows = 0;
    std::uint32_t nCols = 0;
    std::vector<Triplet> entries;
};

} // namespace sadapt

#endif // SADAPT_SPARSE_COO_HH
