#include "sparse/coo.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sadapt {

CooMatrix::CooMatrix(std::uint32_t rows, std::uint32_t cols)
    : nRows(rows), nCols(cols)
{
}

void
CooMatrix::add(std::uint32_t row, std::uint32_t col, double value)
{
    SADAPT_ASSERT(row < nRows && col < nCols, "COO entry out of bounds");
    entries.push_back({row, col, value});
}

void
CooMatrix::coalesce()
{
    std::sort(entries.begin(), entries.end(),
              [](const Triplet &a, const Triplet &b) {
                  return a.row != b.row ? a.row < b.row : a.col < b.col;
              });
    std::vector<Triplet> merged;
    merged.reserve(entries.size());
    for (const auto &t : entries) {
        if (!merged.empty() && merged.back().row == t.row &&
            merged.back().col == t.col) {
            merged.back().value += t.value;
        } else {
            merged.push_back(t);
        }
    }
    std::erase_if(merged, [](const Triplet &t) { return t.value == 0.0; });
    entries = std::move(merged);
}

CooMatrix
CooMatrix::transposed() const
{
    CooMatrix t(nCols, nRows);
    t.entries.reserve(entries.size());
    for (const auto &e : entries)
        t.entries.push_back({e.col, e.row, e.value});
    return t;
}

} // namespace sadapt
