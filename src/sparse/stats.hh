/**
 * @file
 * Structural statistics of sparse matrices, used by the evaluation suite
 * to characterize datasets (Table 5) and by tests as property oracles.
 */

#ifndef SADAPT_SPARSE_STATS_HH
#define SADAPT_SPARSE_STATS_HH

#include <cstdint>
#include <string>

#include "sparse/csr.hh"

namespace sadapt {

/** Aggregated structural statistics for one matrix. */
struct MatrixStats
{
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    std::uint64_t nnz = 0;
    double density = 0.0;

    /** Mean / max nonzeros per row. */
    double meanRowNnz = 0.0;
    std::uint32_t maxRowNnz = 0;

    /** Coefficient of variation of row NNZ (0 = perfectly uniform). */
    double rowNnzCv = 0.0;

    /** Gini coefficient of the row-NNZ distribution (1 = power law-ish). */
    double rowNnzGini = 0.0;

    /** Mean |col - row| over nonzeros, normalized by dimension. */
    double normalizedBandwidth = 0.0;

    /** Fraction of nonzeros within 1% of the diagonal. */
    double diagonalLocality = 0.0;

    /** Render a one-line human-readable summary. */
    std::string summary() const;
};

/** Compute structural statistics of a CSR matrix. */
MatrixStats computeStats(const CsrMatrix &m);

} // namespace sadapt

#endif // SADAPT_SPARSE_STATS_HH
