/**
 * @file
 * Matrix Market (.mtx) I/O, so the real SuiteSparse/SNAP matrices of
 * Table 5 can be dropped in as replacements for the synthetic stand-ins.
 */

#ifndef SADAPT_SPARSE_IO_HH
#define SADAPT_SPARSE_IO_HH

#include <iosfwd>
#include <string>

#include "common/status.hh"
#include "sparse/csr.hh"

namespace sadapt {

/**
 * Read a Matrix Market coordinate-format matrix (real/integer/pattern;
 * general or symmetric). Pattern entries receive value 1.0. Returns a
 * descriptive error for malformed input: bad banner, unsupported
 * format, dimensions or entry counts that overflow the 32-bit index
 * space, non-numeric entries, out-of-bounds coordinates, and NaN/Inf
 * values.
 */
[[nodiscard]] Result<CsrMatrix> tryReadMatrixMarket(std::istream &in);

/** Read a Matrix Market file from a path (recoverable error). */
[[nodiscard]] Result<CsrMatrix>
tryReadMatrixMarketFile(const std::string &path);

/** As tryReadMatrixMarket, but calls fatal() on malformed input. */
CsrMatrix readMatrixMarket(std::istream &in);

/** As tryReadMatrixMarketFile, but calls fatal() on any error. */
CsrMatrix readMatrixMarketFile(const std::string &path);

/** Write a matrix in Matrix Market coordinate real general format. */
void writeMatrixMarket(const CsrMatrix &m, std::ostream &out);

/** Write a matrix to a Matrix Market file at a path. */
void writeMatrixMarketFile(const CsrMatrix &m, const std::string &path);

} // namespace sadapt

#endif // SADAPT_SPARSE_IO_HH
