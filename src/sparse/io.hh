/**
 * @file
 * Matrix Market (.mtx) I/O, so the real SuiteSparse/SNAP matrices of
 * Table 5 can be dropped in as replacements for the synthetic stand-ins.
 */

#ifndef SADAPT_SPARSE_IO_HH
#define SADAPT_SPARSE_IO_HH

#include <iosfwd>
#include <string>

#include "sparse/csr.hh"

namespace sadapt {

/**
 * Read a Matrix Market coordinate-format matrix (real/integer/pattern;
 * general or symmetric). Pattern entries receive value 1.0. Calls fatal()
 * on malformed input.
 */
CsrMatrix readMatrixMarket(std::istream &in);

/** Read a Matrix Market file from a path. */
CsrMatrix readMatrixMarketFile(const std::string &path);

/** Write a matrix in Matrix Market coordinate real general format. */
void writeMatrixMarket(const CsrMatrix &m, std::ostream &out);

/** Write a matrix to a Matrix Market file at a path. */
void writeMatrixMarketFile(const CsrMatrix &m, const std::string &path);

} // namespace sadapt

#endif // SADAPT_SPARSE_IO_HH
