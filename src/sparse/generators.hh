/**
 * @file
 * Synthetic sparse-matrix generators.
 *
 * The uniform-random and R-MAT generators follow Section 5.4 of the paper
 * (R-MAT with A = C = 0.1, B = 0.4). The structural generators (banded,
 * block, arrowhead, mesh, strip) produce stand-ins for the real-world
 * SuiteSparse/SNAP matrices of Table 5, matching their dimensions, NNZ
 * counts and structure classes.
 */

#ifndef SADAPT_SPARSE_GENERATORS_HH
#define SADAPT_SPARSE_GENERATORS_HH

#include <cstdint>

#include "sparse/csr.hh"

namespace sadapt {

class Rng;

/**
 * Uniform-random square matrix with approximately the requested NNZ,
 * generated like scipy.sparse.random.
 */
CsrMatrix makeUniformRandom(std::uint32_t dim, std::uint64_t nnz, Rng &rng);

/**
 * R-MAT power-law matrix (Chakrabarti et al. 2004) with the paper's
 * parameters A = C = 0.1, B = 0.4 (D = 0.4).
 */
CsrMatrix makeRmat(std::uint32_t dim, std::uint64_t nnz, Rng &rng);

/**
 * R-MAT with caller-supplied quadrant probabilities (a + b + c <= 1).
 */
CsrMatrix makeRmat(std::uint32_t dim, std::uint64_t nnz, double a, double b,
                   double c, Rng &rng);

/**
 * Banded matrix: nonzeros only within +/- bandwidth of the diagonal
 * (CFD / structural-problem shape: EX3, bcsstk08, crack).
 */
CsrMatrix makeBanded(std::uint32_t dim, std::uint64_t nnz,
                     std::uint32_t bandwidth, Rng &rng);

/**
 * Block-diagonal matrix with dense-ish random blocks (chemistry shape:
 * Si2, bayer09).
 */
CsrMatrix makeBlockDiagonal(std::uint32_t dim, std::uint64_t nnz,
                            std::uint32_t block, Rng &rng);

/**
 * Arrowhead matrix: a banded core plus dense first rows/columns (optimal
 * control shape: spaceStation, kineticBatchReactor).
 */
CsrMatrix makeArrowhead(std::uint32_t dim, std::uint64_t nnz,
                        std::uint32_t arrow_width, Rng &rng);

/**
 * 2D 5-point mesh adjacency with random perturbation (2D/3D problem
 * shape: nopoly, crack). dim should be a perfect square or close.
 */
CsrMatrix makeMesh2d(std::uint32_t dim, std::uint64_t nnz, Rng &rng);

/**
 * The Figure 1 motivation matrix: mostly-sparse strips separated by a few
 * dense columns (and matching dense rows in the transpose), so that
 * outer-product SpMSpM alternates between dense and sparse implicit
 * phases.
 *
 * @param dim matrix dimension.
 * @param overall_density target total density (paper uses 20%).
 * @param num_dense_cols number of dense separator columns (paper: strips
 *        separated by dense columns; 8 strips => 7-8 separators).
 */
CsrMatrix makeStripStructured(std::uint32_t dim, double overall_density,
                              std::uint32_t num_dense_cols, Rng &rng);

/** Symmetrize: returns A + A^T pattern (values re-randomized). */
CsrMatrix symmetrized(const CsrMatrix &a, Rng &rng);

} // namespace sadapt

#endif // SADAPT_SPARSE_GENERATORS_HH
