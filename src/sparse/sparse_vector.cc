#include "sparse/sparse_vector.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace sadapt {

SparseVector::SparseVector(std::uint32_t dim)
    : dimension(dim)
{
}

SparseVector::SparseVector(std::uint32_t dim, std::vector<Entry> raw)
    : dimension(dim)
{
    std::sort(raw.begin(), raw.end(),
              [](const Entry &a, const Entry &b) {
                  return a.index < b.index;
              });
    for (const auto &e : raw) {
        SADAPT_ASSERT(e.index < dim, "sparse vector index out of bounds");
        if (!elems.empty() && elems.back().index == e.index)
            elems.back().value += e.value;
        else
            elems.push_back(e);
    }
    std::erase_if(elems, [](const Entry &e) { return e.value == 0.0; });
}

SparseVector
SparseVector::random(std::uint32_t dim, double density, Rng &rng)
{
    std::vector<Entry> raw;
    const auto target = static_cast<std::size_t>(density * dim);
    for (std::size_t idx : rng.sampleIndices(dim, std::min<std::size_t>(
             target, dim))) {
        raw.push_back({static_cast<std::uint32_t>(idx),
                       rng.uniform(0.1, 1.0)});
    }
    return SparseVector(dim, std::move(raw));
}

double
SparseVector::density() const
{
    return dimension == 0 ? 0.0
        : static_cast<double>(nnz()) / dimension;
}

void
SparseVector::accumulate(std::uint32_t index, double value)
{
    SADAPT_ASSERT(index < dimension, "sparse vector index out of bounds");
    auto it = std::lower_bound(
        elems.begin(), elems.end(), index,
        [](const Entry &e, std::uint32_t i) { return e.index < i; });
    if (it != elems.end() && it->index == index)
        it->value += value;
    else
        elems.insert(it, {index, value});
}

double
SparseVector::at(std::uint32_t index) const
{
    auto it = std::lower_bound(
        elems.begin(), elems.end(), index,
        [](const Entry &e, std::uint32_t i) { return e.index < i; });
    if (it == elems.end() || it->index != index)
        return 0.0;
    return it->value;
}

void
SparseVector::maskOut(const std::vector<bool> &mask)
{
    std::erase_if(elems, [&](const Entry &e) {
        return e.index < mask.size() && mask[e.index];
    });
}

} // namespace sadapt
