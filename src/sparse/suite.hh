/**
 * @file
 * The evaluation dataset suite of Table 5.
 *
 * Synthetic datasets U1-U3 (uniform) and P1-P3 (power-law) are generated
 * exactly as the paper describes. The real-world SuiteSparse/SNAP matrices
 * R01-R16 are not redistributable here, so each is replaced by a synthetic
 * stand-in of the same dimension, NNZ count and structure class (see
 * DESIGN.md, substitution table). A Matrix Market file can be supplied to
 * override any stand-in with the genuine matrix.
 */

#ifndef SADAPT_SPARSE_SUITE_HH
#define SADAPT_SPARSE_SUITE_HH

#include <string>
#include <vector>

#include "sparse/csr.hh"

namespace sadapt {

/** Structure class of a suite matrix, used to pick the generator. */
enum class StructureClass
{
    Uniform,      //!< uniform random (U1-U3)
    PowerLaw,     //!< R-MAT directed power-law graph
    PowerLawSym,  //!< symmetrized R-MAT (undirected graph)
    Banded,       //!< narrow band around the diagonal (CFD, structural)
    BlockDiag,    //!< dense-ish diagonal blocks (chemistry)
    Arrowhead,    //!< band + dense border rows/cols (optimal control)
    Mesh2d,       //!< 5-point stencil mesh (2D/3D problems)
};

/** Descriptor of one suite dataset (one row of Table 5). */
struct SuiteEntry
{
    std::string id;          //!< e.g. "U1", "P3", "R07"
    std::string name;        //!< e.g. "p2p-Gnutella08 (stand-in)"
    std::string domain;      //!< application domain from Table 5
    StructureClass klass;
    std::uint32_t dim;       //!< paper-reported dimension
    std::uint64_t nnz;       //!< paper-reported NNZ
};

/** @return the descriptors of all Table 5 datasets, in ID order. */
const std::vector<SuiteEntry> &suiteEntries();

/** @return the descriptor with the given ID; fatal() if unknown. */
const SuiteEntry &suiteEntry(const std::string &id);

/**
 * Materialize a suite dataset.
 *
 * @param id Table 5 dataset ID ("U1".."U3", "P1".."P3", "R01".."R16").
 * @param scale multiplier applied to both dimension and NNZ (degree is
 *        preserved). 1.0 reproduces the paper's sizes; benches use smaller
 *        scales to fit single-core simulation budgets.
 * @param seed RNG seed (dataset ID is mixed in, so different IDs at the
 *        same seed differ).
 */
CsrMatrix makeSuiteMatrix(const std::string &id, double scale = 1.0,
                          std::uint64_t seed = 1);

/** IDs used for SpMSpM evaluation (Figure 6): R01-R08. */
std::vector<std::string> spmspmRealWorldIds();

/** IDs used for SpMSpV / graph evaluation (Figure 7, Table 6): R09-R16. */
std::vector<std::string> spmspvRealWorldIds();

/** Synthetic IDs (Figure 5): U1-U3, P1-P3. */
std::vector<std::string> syntheticIds();

} // namespace sadapt

#endif // SADAPT_SPARSE_SUITE_HH
