#include "sparse/suite.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "sparse/generators.hh"

namespace sadapt {

const std::vector<SuiteEntry> &
suiteEntries()
{
    using SC = StructureClass;
    static const std::vector<SuiteEntry> entries = {
        // Synthetic (Table 5, top): dimension 8192 with growing NNZ.
        {"U1", "uniform-25k", "Synthetic", SC::Uniform, 8192, 25000},
        {"U2", "uniform-50k", "Synthetic", SC::Uniform, 8192, 50000},
        {"U3", "uniform-100k", "Synthetic", SC::Uniform, 8192, 100000},
        {"P1", "rmat-25k", "Synthetic", SC::PowerLaw, 8192, 25000},
        {"P2", "rmat-50k", "Synthetic", SC::PowerLaw, 8192, 50000},
        {"P3", "rmat-100k", "Synthetic", SC::PowerLaw, 8192, 100000},
        // Real-world stand-ins (Table 5, bottom). Dimensions/NNZ follow
        // the paper; the structure class follows the application domain.
        {"R01", "California (stand-in)", "Directed Graph",
         SC::PowerLaw, 9700, 16200},
        {"R02", "Si2 (stand-in)", "Quant. Chemistry",
         SC::BlockDiag, 800, 17800},
        {"R03", "bayer09 (stand-in)", "Chemical Simulation",
         SC::BlockDiag, 3100, 11800},
        {"R04", "bcsstk08 (stand-in)", "Structural Problem",
         SC::Banded, 1100, 13000},
        {"R05", "coater1 (stand-in)", "Comp. Fluid Dyn.",
         SC::Banded, 1300, 19500},
        {"R06", "gemat12 (stand-in)", "Power Network",
         SC::Mesh2d, 4900, 33000},
        {"R07", "p2p-Gnutella08 (stand-in)", "Directed Graph",
         SC::PowerLaw, 6300, 20800},
        {"R08", "spaceStation_11 (stand-in)", "Optimal Control",
         SC::Arrowhead, 1400, 19000},
        {"R09", "EX3 (stand-in)", "Comp. Fluid Dyn.",
         SC::Banded, 1800, 52700},
        {"R10", "Oregon-1 (stand-in)", "Undirected Graph",
         SC::PowerLawSym, 11500, 46800},
        {"R11", "as-22july06 (stand-in)", "Undirected Graph",
         SC::PowerLawSym, 23000, 96900},
        {"R12", "crack (stand-in)", "2D/3D Problem",
         SC::Mesh2d, 10200, 60800},
        {"R13", "kineticBatchReactor_3 (stand-in)", "Optimal Control",
         SC::Arrowhead, 5100, 53200},
        {"R14", "nopoly (stand-in)", "Undirected Graph",
         SC::PowerLawSym, 10800, 70800},
        {"R15", "soc-sign-bitcoin-otc (stand-in)", "Directed Graph",
         SC::PowerLaw, 5900, 35600},
        {"R16", "wiki-Vote_11 (stand-in)", "Directed Graph",
         SC::PowerLaw, 8300, 103700},
    };
    return entries;
}

const SuiteEntry &
suiteEntry(const std::string &id)
{
    for (const auto &e : suiteEntries())
        if (e.id == id)
            return e;
    fatal("unknown suite dataset id: " + id);
}

namespace {

std::uint64_t
mixSeed(std::uint64_t seed, const std::string &id)
{
    std::uint64_t h = seed * 0x9e3779b97f4a7c15ull;
    for (char c : id)
        h = (h ^ static_cast<std::uint64_t>(c)) * 0x100000001b3ull;
    return h;
}

} // namespace

CsrMatrix
makeSuiteMatrix(const std::string &id, double scale, std::uint64_t seed)
{
    const SuiteEntry &e = suiteEntry(id);
    SADAPT_ASSERT(scale > 0.0 && scale <= 1.0,
                  "suite scale must be in (0, 1]");
    const auto dim = std::max<std::uint32_t>(
        64, static_cast<std::uint32_t>(std::lround(e.dim * scale)));
    // Scaling NNZ proportionally keeps the mean degree (and thus the
    // per-row work distribution shape) constant.
    const auto nnz = std::max<std::uint64_t>(
        dim, static_cast<std::uint64_t>(std::llround(e.nnz * scale)));
    Rng rng(mixSeed(seed, id));

    switch (e.klass) {
      case StructureClass::Uniform:
        return makeUniformRandom(dim, nnz, rng);
      case StructureClass::PowerLaw:
        return makeRmat(dim, nnz, rng);
      case StructureClass::PowerLawSym:
        // Generate half the edges, then symmetrize to the target NNZ.
        return symmetrized(makeRmat(dim, nnz / 2, rng), rng);
      case StructureClass::Banded:
        return makeBanded(
            dim, nnz,
            std::max<std::uint32_t>(
                2, static_cast<std::uint32_t>(
                    1.2 * static_cast<double>(nnz) / dim)),
            rng);
      case StructureClass::BlockDiag:
        return makeBlockDiagonal(
            dim, nnz,
            std::max<std::uint32_t>(
                4, static_cast<std::uint32_t>(
                    2.0 * static_cast<double>(nnz) / dim)),
            rng);
      case StructureClass::Arrowhead:
        return makeArrowhead(
            dim, nnz, std::max<std::uint32_t>(2, dim / 64), rng);
      case StructureClass::Mesh2d:
        return makeMesh2d(dim, nnz, rng);
    }
    fatal("unhandled structure class");
}

std::vector<std::string>
spmspmRealWorldIds()
{
    return {"R01", "R02", "R03", "R04", "R05", "R06", "R07", "R08"};
}

std::vector<std::string>
spmspvRealWorldIds()
{
    return {"R09", "R10", "R11", "R12", "R13", "R14", "R15", "R16"};
}

std::vector<std::string>
syntheticIds()
{
    return {"U1", "U2", "U3", "P1", "P2", "P3"};
}

} // namespace sadapt
