/**
 * @file
 * Sparse vector as an array of (index, value) tuples, the layout the paper
 * uses for the B operand of SpMSpV (Section 5.4).
 */

#ifndef SADAPT_SPARSE_SPARSE_VECTOR_HH
#define SADAPT_SPARSE_SPARSE_VECTOR_HH

#include <cstdint>
#include <vector>

namespace sadapt {

class Rng;

/**
 * A sparse vector of doubles with sorted, unique indices.
 */
class SparseVector
{
  public:
    /** One stored element. */
    struct Entry
    {
        std::uint32_t index;
        double value;

        bool operator==(const Entry &other) const = default;
    };

    SparseVector() = default;

    /** An empty vector of the given logical dimension. */
    explicit SparseVector(std::uint32_t dim);

    /** Build from entries; sorts and sums duplicates. */
    SparseVector(std::uint32_t dim, std::vector<Entry> raw);

    /** Generate a uniform-random vector with the given density. */
    static SparseVector random(std::uint32_t dim, double density, Rng &rng);

    std::uint32_t dim() const { return dimension; }
    std::size_t nnz() const { return elems.size(); }
    double density() const;

    const std::vector<Entry> &entries() const { return elems; }

    /** Insert-or-accumulate a value at an index. O(nnz) worst case. */
    void accumulate(std::uint32_t index, double value);

    /** Value at an index (0.0 if absent), O(log nnz). */
    double at(std::uint32_t index) const;

    /** Remove entries whose index is present in the given mask. */
    void maskOut(const std::vector<bool> &mask);

    bool operator==(const SparseVector &other) const = default;

  private:
    std::uint32_t dimension = 0;
    std::vector<Entry> elems;
};

} // namespace sadapt

#endif // SADAPT_SPARSE_SPARSE_VECTOR_HH
