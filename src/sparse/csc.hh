/**
 * @file
 * Compressed sparse column (CSC) matrix. The paper stores Matrix A of
 * SpMSpM in CSC (Section 5.4), which outer-product SpGEMM walks by column.
 */

#ifndef SADAPT_SPARSE_CSC_HH
#define SADAPT_SPARSE_CSC_HH

#include <cstdint>
#include <span>
#include <vector>

namespace sadapt {

class CooMatrix;
class CsrMatrix;

/**
 * A read-mostly CSC matrix: colPtr (cols+1), row indices, and values, with
 * row indices sorted within each column.
 */
class CscMatrix
{
  public:
    CscMatrix() = default;

    /** Build from a COO matrix. */
    explicit CscMatrix(const CooMatrix &coo);

    /** Build from a CSR matrix. */
    explicit CscMatrix(const CsrMatrix &csr);

    std::uint32_t rows() const { return nRows; }
    std::uint32_t cols() const { return nCols; }
    std::size_t nnz() const { return rowIdx.size(); }

    /** Fraction of entries that are nonzero. */
    double density() const;

    const std::vector<std::uint64_t> &colPtr() const { return colPtrV; }
    const std::vector<std::uint32_t> &rowIndices() const { return rowIdx; }
    const std::vector<double> &values() const { return vals; }

    /** Number of nonzeros in one column. */
    std::uint32_t
    colNnz(std::uint32_t c) const
    {
        return static_cast<std::uint32_t>(colPtrV[c + 1] - colPtrV[c]);
    }

    /** Row indices of one column, as a span. */
    std::span<const std::uint32_t> colRows(std::uint32_t c) const;

    /** Values of one column, as a span. */
    std::span<const double> colVals(std::uint32_t c) const;

    /** Convert to COO. */
    CooMatrix toCoo() const;

  private:
    std::uint32_t nRows = 0;
    std::uint32_t nCols = 0;
    std::vector<std::uint64_t> colPtrV;
    std::vector<std::uint32_t> rowIdx;
    std::vector<double> vals;

    void buildFromCoo(const CooMatrix &coo);
};

} // namespace sadapt

#endif // SADAPT_SPARSE_CSC_HH
