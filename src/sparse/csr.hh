/**
 * @file
 * Compressed sparse row (CSR) matrix. The paper stores Matrix B of
 * SpMSpM in CSR (Section 5.4).
 */

#ifndef SADAPT_SPARSE_CSR_HH
#define SADAPT_SPARSE_CSR_HH

#include <cstdint>
#include <span>
#include <vector>

namespace sadapt {

class CooMatrix;
class CscMatrix;

/**
 * A read-mostly CSR matrix: rowPtr (rows+1), column indices, and values,
 * with column indices sorted within each row.
 */
class CsrMatrix
{
  public:
    CsrMatrix() = default;

    /** Build from a COO matrix (coalesces a copy internally). */
    explicit CsrMatrix(const CooMatrix &coo);

    std::uint32_t rows() const { return nRows; }
    std::uint32_t cols() const { return nCols; }
    std::size_t nnz() const { return colIdx.size(); }

    /** Fraction of entries that are nonzero. */
    double density() const;

    const std::vector<std::uint64_t> &rowPtr() const { return rowPtrV; }
    const std::vector<std::uint32_t> &colIndices() const { return colIdx; }
    const std::vector<double> &values() const { return vals; }

    /** Number of nonzeros in one row. */
    std::uint32_t
    rowNnz(std::uint32_t r) const
    {
        return static_cast<std::uint32_t>(rowPtrV[r + 1] - rowPtrV[r]);
    }

    /** Column indices of one row, as a span. */
    std::span<const std::uint32_t> rowCols(std::uint32_t r) const;

    /** Values of one row, as a span. */
    std::span<const double> rowVals(std::uint32_t r) const;

    /** Retrieve a single element (O(log rowNnz)); 0.0 if absent. */
    double at(std::uint32_t r, std::uint32_t c) const;

    /** Convert to COO. */
    CooMatrix toCoo() const;

    /** Transpose (yields the CSR of the transposed matrix). */
    CsrMatrix transposed() const;

    bool operator==(const CsrMatrix &other) const = default;

  private:
    friend class CscMatrix;

    std::uint32_t nRows = 0;
    std::uint32_t nCols = 0;
    std::vector<std::uint64_t> rowPtrV;
    std::vector<std::uint32_t> colIdx;
    std::vector<double> vals;
};

} // namespace sadapt

#endif // SADAPT_SPARSE_CSR_HH
