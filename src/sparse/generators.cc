#include "sparse/generators.hh"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.hh"
#include "common/rng.hh"
#include "sparse/coo.hh"

namespace sadapt {

namespace {

/** Pack (row, col) into a single 64-bit key for dedup. */
std::uint64_t
key(std::uint32_t r, std::uint32_t c)
{
    return (static_cast<std::uint64_t>(r) << 32) | c;
}

/**
 * Insert up to max_tries random positions produced by gen() until the
 * matrix holds nnz unique entries.
 */
template <typename Gen>
CsrMatrix
fillUnique(std::uint32_t rows, std::uint32_t cols, std::uint64_t nnz,
           Rng &rng, Gen gen)
{
    const std::uint64_t capacity =
        static_cast<std::uint64_t>(rows) * cols;
    nnz = std::min(nnz, capacity);
    CooMatrix coo(rows, cols);
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(nnz * 2);
    std::uint64_t tries = 0;
    const std::uint64_t max_tries = nnz * 64 + 1024;
    while (seen.size() < nnz && tries < max_tries) {
        ++tries;
        auto [r, c] = gen();
        if (r >= rows || c >= cols)
            continue;
        if (seen.insert(key(r, c)).second)
            coo.add(r, c, rng.uniform(0.1, 1.0));
    }
    return CsrMatrix(coo);
}

} // namespace

CsrMatrix
makeUniformRandom(std::uint32_t dim, std::uint64_t nnz, Rng &rng)
{
    return fillUnique(dim, dim, nnz, rng, [&] {
        return std::pair<std::uint32_t, std::uint32_t>(
            static_cast<std::uint32_t>(rng.below(dim)),
            static_cast<std::uint32_t>(rng.below(dim)));
    });
}

CsrMatrix
makeRmat(std::uint32_t dim, std::uint64_t nnz, Rng &rng)
{
    return makeRmat(dim, nnz, 0.1, 0.4, 0.1, rng);
}

CsrMatrix
makeRmat(std::uint32_t dim, std::uint64_t nnz, double a, double b, double c,
         Rng &rng)
{
    SADAPT_ASSERT(a + b + c <= 1.0 + 1e-9, "R-MAT probabilities exceed 1");
    // Non-power-of-two dimensions are handled by generating within the
    // next power of two and rejecting out-of-range coordinates (done by
    // fillUnique), which preserves the recursive skew of the pattern.
    int levels = 0;
    while ((1u << levels) < dim)
        ++levels;
    return fillUnique(dim, dim, nnz, rng, [&] {
        std::uint32_t r = 0, col = 0;
        for (int l = 0; l < levels; ++l) {
            const double p = rng.uniform();
            r <<= 1;
            col <<= 1;
            if (p < a) {
                // top-left quadrant: nothing to add
            } else if (p < a + b) {
                col |= 1; // top-right
            } else if (p < a + b + c) {
                r |= 1; // bottom-left
            } else {
                r |= 1;
                col |= 1; // bottom-right
            }
        }
        return std::pair<std::uint32_t, std::uint32_t>(r, col);
    });
}

CsrMatrix
makeBanded(std::uint32_t dim, std::uint64_t nnz, std::uint32_t bandwidth,
           Rng &rng)
{
    SADAPT_ASSERT(bandwidth >= 1, "band must be at least 1 wide");
    return fillUnique(dim, dim, nnz, rng, [&] {
        const auto r = static_cast<std::uint32_t>(rng.below(dim));
        const std::int64_t off =
            rng.range(-static_cast<std::int64_t>(bandwidth), bandwidth);
        const std::int64_t c = static_cast<std::int64_t>(r) + off;
        return std::pair<std::uint32_t, std::uint32_t>(
            r, c < 0 || c >= dim ? dim : static_cast<std::uint32_t>(c));
    });
}

CsrMatrix
makeBlockDiagonal(std::uint32_t dim, std::uint64_t nnz, std::uint32_t block,
                  Rng &rng)
{
    SADAPT_ASSERT(block >= 1 && block <= dim, "bad block size");
    const std::uint32_t nblocks = (dim + block - 1) / block;
    return fillUnique(dim, dim, nnz, rng, [&] {
        const auto b = static_cast<std::uint32_t>(rng.below(nblocks));
        const std::uint32_t base = b * block;
        const std::uint32_t span =
            std::min(block, dim - base);
        return std::pair<std::uint32_t, std::uint32_t>(
            base + static_cast<std::uint32_t>(rng.below(span)),
            base + static_cast<std::uint32_t>(rng.below(span)));
    });
}

CsrMatrix
makeArrowhead(std::uint32_t dim, std::uint64_t nnz,
              std::uint32_t arrow_width, Rng &rng)
{
    SADAPT_ASSERT(arrow_width >= 1 && arrow_width < dim,
                  "bad arrow width");
    // ~40% of entries land in the dense arrow rows/columns; the remainder
    // is a narrow band, matching optimal-control sparsity plots.
    const std::uint32_t band = std::max<std::uint32_t>(2, dim / 256);
    return fillUnique(dim, dim, nnz, rng, [&] {
        const double p = rng.uniform();
        if (p < 0.2) { // dense top rows
            return std::pair<std::uint32_t, std::uint32_t>(
                static_cast<std::uint32_t>(rng.below(arrow_width)),
                static_cast<std::uint32_t>(rng.below(dim)));
        } else if (p < 0.4) { // dense left columns
            return std::pair<std::uint32_t, std::uint32_t>(
                static_cast<std::uint32_t>(rng.below(dim)),
                static_cast<std::uint32_t>(rng.below(arrow_width)));
        }
        const auto r = static_cast<std::uint32_t>(rng.below(dim));
        const std::int64_t c = static_cast<std::int64_t>(r) +
            rng.range(-static_cast<std::int64_t>(band), band);
        return std::pair<std::uint32_t, std::uint32_t>(
            r, c < 0 || c >= dim ? dim : static_cast<std::uint32_t>(c));
    });
}

CsrMatrix
makeMesh2d(std::uint32_t dim, std::uint64_t nnz, Rng &rng)
{
    const auto side = static_cast<std::uint32_t>(
        std::max(2.0, std::floor(std::sqrt(static_cast<double>(dim)))));
    return fillUnique(dim, dim, nnz, rng, [&] {
        const auto v = static_cast<std::uint32_t>(rng.below(dim));
        // Pick one of the 5-point-stencil neighbours of v on a side x side
        // grid (out-of-range neighbours get rejected by fillUnique).
        static const std::int64_t offs[5] = {0, 1, -1, 0, 0};
        const int pick = static_cast<int>(rng.below(5));
        std::int64_t c = static_cast<std::int64_t>(v);
        if (pick < 3)
            c += offs[pick];
        else if (pick == 3)
            c += side;
        else
            c -= side;
        return std::pair<std::uint32_t, std::uint32_t>(
            v, c < 0 || c >= dim ? dim : static_cast<std::uint32_t>(c));
    });
}

CsrMatrix
makeStripStructured(std::uint32_t dim, double overall_density,
                    std::uint32_t num_dense_cols, Rng &rng)
{
    SADAPT_ASSERT(num_dense_cols < dim, "too many dense columns");
    CooMatrix coo(dim, dim);
    std::unordered_set<std::uint64_t> seen;

    // Evenly spaced dense separator columns, filled ~90% dense.
    std::vector<bool> is_dense(dim, false);
    for (std::uint32_t i = 0; i < num_dense_cols; ++i) {
        const std::uint32_t c =
            (i + 1) * dim / (num_dense_cols + 1);
        is_dense[c] = true;
        for (std::uint32_t r = 0; r < dim; ++r) {
            if (rng.chance(0.9)) {
                seen.insert(key(r, c));
                coo.add(r, c, rng.uniform(0.1, 1.0));
            }
        }
    }

    // Fill the sparse strips up to the overall density target.
    const auto target = static_cast<std::uint64_t>(
        overall_density * dim * dim);
    std::uint64_t tries = 0;
    const std::uint64_t max_tries = target * 64 + 1024;
    while (seen.size() < target && tries < max_tries) {
        ++tries;
        const auto r = static_cast<std::uint32_t>(rng.below(dim));
        const auto c = static_cast<std::uint32_t>(rng.below(dim));
        if (is_dense[c])
            continue;
        if (seen.insert(key(r, c)).second)
            coo.add(r, c, rng.uniform(0.1, 1.0));
    }
    return CsrMatrix(coo);
}

CsrMatrix
symmetrized(const CsrMatrix &a, Rng &rng)
{
    CooMatrix coo(a.rows(), a.cols());
    std::unordered_set<std::uint64_t> seen;
    for (std::uint32_t r = 0; r < a.rows(); ++r) {
        auto cols = a.rowCols(r);
        for (std::uint32_t c : cols) {
            if (seen.insert(key(r, c)).second)
                coo.add(r, c, rng.uniform(0.1, 1.0));
            if (seen.insert(key(c, r)).second)
                coo.add(c, r, rng.uniform(0.1, 1.0));
        }
    }
    return CsrMatrix(coo);
}

} // namespace sadapt
