/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the library (matrix generation, configuration
 * sampling, decision-tree training) flows through Rng so that experiments
 * are reproducible from a single seed. The generator is xoshiro256**, which
 * is fast, has a 256-bit state, and passes BigCrush.
 */

#ifndef SADAPT_COMMON_RNG_HH
#define SADAPT_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace sadapt {

/**
 * A small, fast, seedable PRNG (xoshiro256**) with convenience helpers.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x5ADA9753u);

    /** @return the next raw 64-bit value. */
    std::uint64_t next();

    /** @return a uniform double in [0, 1). */
    double uniform();

    /** @return a uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return a uniform integer in [0, n). Requires n > 0. */
    std::uint64_t below(std::uint64_t n);

    /** @return a uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** @return true with probability p. */
    bool chance(double p);

    /** @return a standard-normal variate (Box-Muller). */
    double gaussian();

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = below(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Sample k distinct indices from [0, n) (k <= n). */
    std::vector<std::size_t> sampleIndices(std::size_t n, std::size_t k);

  private:
    std::uint64_t s[4];
    bool haveSpare = false;
    double spare = 0.0;
};

} // namespace sadapt

#endif // SADAPT_COMMON_RNG_HH
