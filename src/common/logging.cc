#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace sadapt {

namespace {

/**
 * The threshold is read from SADAPT_LOG_LEVEL exactly once; a value
 * below 0 marks "not yet initialized". Kept as a plain int so the
 * lazy init needs no dynamic initialization order guarantees.
 */
int levelV = -1;

LogLevel
currentLevel()
{
    if (levelV < 0) {
        const char *env = std::getenv("SADAPT_LOG_LEVEL");
        levelV = static_cast<int>(
            env ? parseLogLevel(env) : LogLevel::Info);
    }
    return static_cast<LogLevel>(levelV);
}

} // namespace

LogLevel
parseLogLevel(const std::string &name)
{
    if (name == "debug")
        return LogLevel::Debug;
    if (name == "warn")
        return LogLevel::Warn;
    return LogLevel::Info;
}

LogLevel
logLevel()
{
    return currentLevel();
}

void
setLogLevel(LogLevel level)
{
    levelV = static_cast<int>(level);
}

void
debug(const std::string &msg)
{
    if (currentLevel() <= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (currentLevel() <= LogLevel::Info)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warn(const std::string &msg)
{
    if (currentLevel() <= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace sadapt
