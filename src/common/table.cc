#include "common/table.hh"

#include <cstdio>
#include <sstream>

namespace sadapt {

void
Table::header(const std::vector<std::string> &cells)
{
    head = cells;
}

void
Table::row(const std::vector<std::string> &cells)
{
    rows.push_back(cells);
}

void
Table::print() const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(head);
    for (const auto &r : rows)
        grow(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &c = i < cells.size() ? cells[i] : "";
            std::printf("%-*s", static_cast<int>(widths[i] + 2), c.c_str());
        }
        std::printf("\n");
    };
    if (!head.empty()) {
        emit(head);
        std::size_t total = 0;
        for (auto w : widths)
            total += w + 2;
        std::printf("%s\n", std::string(total, '-').c_str());
    }
    for (const auto &r : rows)
        emit(r);
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    return os.str();
}

std::string
Table::gain(double v, int precision)
{
    return num(v, precision) + "x";
}

} // namespace sadapt
