/**
 * @file
 * Minimal CSV writing, used by the benchmark harness to dump raw results.
 */

#ifndef SADAPT_COMMON_CSV_HH
#define SADAPT_COMMON_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace sadapt {

/**
 * Writes rows of heterogeneous cells to a CSV file. Cells containing
 * commas, quotes or newlines are quoted per RFC 4180.
 */
class CsvWriter
{
  public:
    /**
     * Open the target file for writing, creating parent directories.
     * @param path file to create/overwrite.
     */
    explicit CsvWriter(const std::string &path);

    /** Append one cell to the current row. */
    CsvWriter &cell(const std::string &value);
    CsvWriter &cell(double value);
    CsvWriter &cell(long long value);

    /** Terminate the current row. */
    void endRow();

    /** Convenience: write a full row of string cells. */
    void row(const std::vector<std::string> &cells);

    /** @return true if the file opened successfully. */
    bool ok() const { return static_cast<bool>(out); }

  private:
    std::ofstream out;
    bool rowStarted = false;

    void sep();
};

} // namespace sadapt

#endif // SADAPT_COMMON_CSV_HH
