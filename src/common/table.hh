/**
 * @file
 * Fixed-width console table printing for the benchmark harness, so each
 * bench binary can print the same rows/series the paper reports.
 */

#ifndef SADAPT_COMMON_TABLE_HH
#define SADAPT_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace sadapt {

/**
 * Accumulates rows of string cells and prints them with aligned columns.
 */
class Table
{
  public:
    /** Set the header row. */
    void header(const std::vector<std::string> &cells);

    /** Append a data row. */
    void row(const std::vector<std::string> &cells);

    /** Render the table to stdout. */
    void print() const;

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Format a multiplicative gain, e.g. "1.53x". */
    static std::string gain(double v, int precision = 2);

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

} // namespace sadapt

#endif // SADAPT_COMMON_TABLE_HH
