/**
 * @file
 * Lightweight recoverable-error types for library-level code.
 *
 * fatal() (logging.hh) terminates the process and is reserved for CLI
 * entry points; library code that can encounter bad *input* (malformed
 * matrix files, unparsable configuration specs, invalid fault specs)
 * returns a Status or Result<T> instead, so long-running services built
 * on the library can reject one request without dying.
 */

#ifndef SADAPT_COMMON_STATUS_HH
#define SADAPT_COMMON_STATUS_HH

#include <optional>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace sadapt {

/** Success or a descriptive error message. */
class [[nodiscard]] Status
{
  public:
    /** The OK status. */
    Status() = default;

    static Status ok() { return Status(); }

    static Status
    error(std::string message)
    {
        Status s;
        s.msgV = std::move(message);
        s.failedV = true;
        return s;
    }

    bool isOk() const { return !failedV; }
    explicit operator bool() const { return isOk(); }

    /** Error message; empty for OK. */
    const std::string &message() const { return msgV; }

  private:
    std::string msgV;
    bool failedV = false;
};

/**
 * A value or a descriptive error. Callers either test ok() and read
 * value(), or funnel the error upward; valueOrDie() bridges to the
 * legacy fatal() behaviour at process entry points.
 */
template <typename T>
class [[nodiscard]] Result
{
  public:
    /*implicit*/ Result(T value)
        : valueV(std::move(value))
    {
    }

    /*implicit*/ Result(Status status)
        : statusV(std::move(status))
    {
        SADAPT_ASSERT(!statusV.isOk(),
                      "Result constructed from an OK status");
    }

    static Result error(std::string message)
    {
        return Result(Status::error(std::move(message)));
    }

    bool isOk() const { return valueV.has_value(); }
    explicit operator bool() const { return isOk(); }

    const Status &status() const { return statusV; }
    const std::string &message() const { return statusV.message(); }

    T &
    value()
    {
        SADAPT_ASSERT(isOk(), "value() on an error Result");
        return *valueV;
    }

    const T &
    value() const
    {
        SADAPT_ASSERT(isOk(), "value() on an error Result");
        return *valueV;
    }

    /** Extract the value, or exit via fatal() with the error message. */
    T
    valueOrDie() &&
    {
        if (!isOk())
            fatal(statusV.message());
        return std::move(*valueV);
    }

  private:
    std::optional<T> valueV;
    Status statusV;
};

} // namespace sadapt

/**
 * Evaluate an expression yielding a Status and early-return it from
 * the enclosing Status-returning function when it is an error.
 */
#define SADAPT_TRY_STATUS(expr)                                       \
    do {                                                              \
        ::sadapt::Status sadapt_try_status_ = (expr);                 \
        if (!sadapt_try_status_.isOk())                               \
            return sadapt_try_status_;                                \
    } while (false)

#endif // SADAPT_COMMON_STATUS_HH
