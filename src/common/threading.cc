#include "common/threading.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <utility>

#include "common/logging.hh"

namespace sadapt {

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("SPARSEADAPT_JOBS")) {
        const long v = std::strtol(env, nullptr, 10);
        return static_cast<unsigned>(std::clamp(v, 1L, 256L));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned jobs, std::size_t queue_cap)
    : queueCap(queue_cap > 0 ? queue_cap : 4 * std::size_t{jobs})
{
    SADAPT_ASSERT(jobs >= 1, "thread pool needs at least one worker");
    workers.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu);
        cvIdle.wait(lock, [this] { return inFlight == 0; });
        stopping = true;
    }
    cvTask.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mu);
        cvSpace.wait(lock, [this] { return queue.size() < queueCap; });
        queue.push_back(std::move(task));
        ++inFlight;
    }
    cvTask.notify_one();
}

void
ThreadPool::submitBatch(std::span<std::function<void()>> tasks)
{
    std::size_t i = 0;
    while (i < tasks.size()) {
        std::size_t pushed = 0;
        {
            std::unique_lock<std::mutex> lock(mu);
            cvSpace.wait(lock,
                         [this] { return queue.size() < queueCap; });
            while (i < tasks.size() && queue.size() < queueCap) {
                queue.push_back(std::move(tasks[i]));
                ++inFlight;
                ++i;
                ++pushed;
            }
        }
        if (pushed == 1)
            cvTask.notify_one();
        else if (pushed > 1)
            cvTask.notify_all();
    }
}

void
ThreadPool::wait()
{
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lock(mu);
        cvIdle.wait(lock, [this] { return inFlight == 0; });
        err = std::exchange(firstError, nullptr);
    }
    if (err)
        std::rethrow_exception(err);
}

void
ThreadPool::recordException(std::exception_ptr e)
{
    std::lock_guard<std::mutex> lock(mu);
    if (!firstError)
        firstError = e;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu);
            cvTask.wait(lock,
                        [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping, and nothing left to drain
            task = std::move(queue.front());
            queue.pop_front();
        }
        cvSpace.notify_one();
        try {
            task();
        } catch (...) {
            recordException(std::current_exception());
        }
        bool drained = false;
        {
            std::lock_guard<std::mutex> lock(mu);
            drained = --inFlight == 0;
        }
        if (drained)
            cvIdle.notify_all();
    }
}

void
parallelFor(std::size_t n, unsigned jobs,
            const std::function<void(std::size_t)> &body)
{
    if (jobs <= 1 || n <= 1) {
        // The exact serial path: no pool, no locks, caller's thread.
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(jobs, n));
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    ThreadPool pool(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.submit([&] {
            for (;;) {
                if (failed.load(std::memory_order_relaxed))
                    return;
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                try {
                    body(i);
                } catch (...) {
                    failed.store(true, std::memory_order_relaxed);
                    throw; // captured by the pool as firstError
                }
            }
        });
    }
    pool.wait();
}

} // namespace sadapt
