/**
 * @file
 * Status and error reporting helpers, in the spirit of gem5's logging.hh.
 *
 * fatal() is for user errors (bad configuration, invalid arguments);
 * panic() is for conditions that indicate a bug in the library itself.
 */

#ifndef SADAPT_COMMON_LOGGING_HH
#define SADAPT_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace sadapt {

/**
 * Severity levels for the diagnostic stream. Messages below the
 * global threshold are suppressed; fatal()/panic() always print.
 */
enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
};

/** Parse "debug"/"info"/"warn" (case-sensitive); Info on no match. */
LogLevel parseLogLevel(const std::string &name);

/**
 * The process-wide threshold. Initialized lazily from the
 * SADAPT_LOG_LEVEL environment variable (debug|info|warn) on first
 * use; defaults to Info so debug() is silent unless asked for.
 */
LogLevel logLevel();

/** Override the threshold programmatically (wins over the env var). */
void setLogLevel(LogLevel level);

/** Print a debug message to stderr (suppressed unless Debug). */
void debug(const std::string &msg);

/** Print an informational message to stderr (suppressed above Info). */
void inform(const std::string &msg);

/** Print a warning message to stderr (suppressed above Warn). */
void warn(const std::string &msg);

/** Report a user error and exit(1). */
[[noreturn]] void fatal(const std::string &msg);

/** Report an internal error and abort(). */
[[noreturn]] void panic(const std::string &msg);

/**
 * Lightweight printf-free formatting: str("a=", 1, " b=", 2.5).
 */
template <typename... Args>
std::string
str(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace sadapt

/** Assertion that stays active in release builds. */
#define SADAPT_ASSERT(cond, msg) \
    do { \
        if (!(cond)) \
            ::sadapt::panic(::sadapt::str( \
                __FILE__, ":", __LINE__, ": assertion failed: ", #cond, \
                " -- ", msg)); \
    } while (0)

#endif // SADAPT_COMMON_LOGGING_HH
