#include "common/rng.hh"

#include <cassert>
#include <cmath>

namespace sadapt {

namespace {

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

double
Rng::uniform()
{
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    assert(n > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = (~0ull / n) * n;
    std::uint64_t x;
    do {
        x = next();
    } while (x >= limit);
    return x % n;
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    assert(hi >= lo);
    return lo + static_cast<std::int64_t>(
        below(static_cast<std::uint64_t>(hi - lo) + 1));
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

double
Rng::gaussian()
{
    if (haveSpare) {
        haveSpare = false;
        return spare;
    }
    double u, v, sq;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        sq = u * u + v * v;
    } while (sq >= 1.0 || sq == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(sq) / sq);
    spare = v * mul;
    haveSpare = true;
    return u * mul;
}

std::vector<std::size_t>
Rng::sampleIndices(std::size_t n, std::size_t k)
{
    assert(k <= n);
    // Floyd's algorithm would be better for k << n, but sampled sets here
    // are small; a partial shuffle is simple and unbiased.
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i)
        all[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
        std::size_t j = i + below(n - i);
        std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
}

} // namespace sadapt
