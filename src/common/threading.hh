/**
 * @file
 * The repo's one and only threading primitive: a fixed-size thread
 * pool with a bounded task queue, plus the parallelFor() helper the
 * simulation-sweep engine is built on.
 *
 * Design rules (enforced by the lint-naked-thread check):
 *
 *  - No other file spawns std::thread or detaches anything; every
 *    worker lives inside a ThreadPool and is joined in its destructor.
 *  - jobs <= 1 takes the exact serial path: the caller's thread runs
 *    the bodies in index order and no pool, lock or atomic is touched,
 *    so a single-job run is bit-identical to pre-threading code.
 *  - The first exception thrown by any task is captured and rethrown
 *    on the calling thread from wait()/parallelFor(); remaining tasks
 *    still run to completion (workers never die mid-pool).
 *
 * Parallelism defaults come from defaultJobs(): the SPARSEADAPT_JOBS
 * environment variable when set, otherwise the hardware concurrency.
 */

#ifndef SADAPT_COMMON_THREADING_HH
#define SADAPT_COMMON_THREADING_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace sadapt {

/**
 * Worker count for parallel sweeps: SPARSEADAPT_JOBS when set (clamped
 * to [1, 256]; non-numeric values read as 1), otherwise
 * std::thread::hardware_concurrency() (at least 1).
 */
unsigned defaultJobs();

/**
 * Fixed-size pool over a bounded task queue. Tasks run in submission
 * order (workers pop from the front); completion order is of course
 * scheduling-dependent, so anything needing a deterministic result
 * must write to a caller-owned slot and be merged after wait().
 */
class ThreadPool
{
  public:
    /**
     * @param jobs worker threads to spawn (>= 1).
     * @param queue_cap bound on queued-but-unstarted tasks; submit()
     *        blocks when full (0 selects 4 * jobs).
     */
    explicit ThreadPool(unsigned jobs, std::size_t queue_cap = 0);

    /** Joins every worker; pending tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task; blocks while the queue is at capacity. */
    void submit(std::function<void()> task);

    /**
     * Enqueue a batch of tasks in order, moving from `tasks`. Fills
     * the queue in chunks as space frees up, so the batch may exceed
     * the queue capacity; blocks until the last task is enqueued (not
     * until it runs — pair with wait()). Equivalent to submit() in a
     * loop, but takes the queue lock once per chunk instead of once
     * per task — the serve layer's batched-inference stage pushes one
     * prediction task per pending session through here every tick.
     */
    void submitBatch(std::span<std::function<void()>> tasks);

    /**
     * Block until every submitted task has finished, then rethrow the
     * first captured task exception, if any (clearing it, so the pool
     * stays usable).
     */
    void wait();

    unsigned jobs() const { return static_cast<unsigned>(workers.size()); }

  private:
    void workerLoop();
    void recordException(std::exception_ptr e);

    std::mutex mu;
    std::condition_variable cvTask;  //!< queue became non-empty / stop
    std::condition_variable cvSpace; //!< queue dropped below capacity
    std::condition_variable cvIdle;  //!< all tasks drained
    std::deque<std::function<void()>> queue;
    std::size_t queueCap;
    std::size_t inFlight = 0; //!< queued + currently executing
    bool stopping = false;
    std::exception_ptr firstError;
    std::vector<std::thread> workers;
};

/**
 * Run body(i) for i in [0, n). With jobs <= 1 (or n <= 1) this is a
 * plain serial loop in increasing index order on the caller's thread —
 * the exact pre-threading code path. Otherwise min(jobs, n) pool
 * workers pull indices in increasing order; the first exception is
 * rethrown on the caller's thread after every worker has stopped
 * (indices not yet started by then are skipped).
 */
void parallelFor(std::size_t n, unsigned jobs,
                 const std::function<void(std::size_t)> &body);

} // namespace sadapt

#endif // SADAPT_COMMON_THREADING_HH
