/**
 * @file
 * Fundamental scalar types shared across the SparseAdapt codebase.
 */

#ifndef SADAPT_COMMON_TYPES_HH
#define SADAPT_COMMON_TYPES_HH

#include <cstdint>

namespace sadapt {

/** A simulated byte address in the device's physical address space. */
using Addr = std::uint64_t;

/** A count of clock cycles (at whatever clock is currently active). */
using Cycles = std::uint64_t;

/** Simulated wall-clock time, in seconds. */
using Seconds = double;

/** Energy, in joules. */
using Joules = double;

/** Power, in watts. */
using Watts = double;

/** Clock frequency, in hertz. */
using Hertz = double;

/** Size of a cache line, in bytes, across the whole memory hierarchy. */
constexpr std::uint32_t lineSize = 64;

/** Size of a single word (double-precision value or index), in bytes. */
constexpr std::uint32_t wordSize = 8;

} // namespace sadapt

#endif // SADAPT_COMMON_TYPES_HH
