#include "common/csv.hh"

#include <filesystem>
#include <sstream>

namespace sadapt {

namespace {

std::string
escape(const std::string &value)
{
    if (value.find_first_of(",\"\n") == std::string::npos)
        return value;
    std::string quoted = "\"";
    for (char c : value) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

} // namespace

CsvWriter::CsvWriter(const std::string &path)
{
    std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
    }
    out.open(path);
}

void
CsvWriter::sep()
{
    if (rowStarted)
        out << ',';
    rowStarted = true;
}

CsvWriter &
CsvWriter::cell(const std::string &value)
{
    sep();
    out << escape(value);
    return *this;
}

CsvWriter &
CsvWriter::cell(double value)
{
    sep();
    std::ostringstream os;
    os.precision(8);
    os << value;
    out << os.str();
    return *this;
}

CsvWriter &
CsvWriter::cell(long long value)
{
    sep();
    out << value;
    return *this;
}

void
CsvWriter::endRow()
{
    out << '\n';
    rowStarted = false;
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    for (const auto &c : cells)
        cell(c);
    endRow();
}

} // namespace sadapt
