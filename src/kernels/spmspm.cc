#include "kernels/spmspm.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "kernels/address_map.hh"
#include "sparse/coo.hh"

namespace sadapt {

namespace {

// Static access-site ids (prefetcher index table keys).
enum Pc : std::uint16_t
{
    PcAColPtr = 1,
    PcBRowPtr = 2,
    PcARows = 3,
    PcAVals = 4,
    PcBCols = 5,
    PcBVals = 6,
    PcPartColsW = 7,
    PcPartValsW = 8,
    PcSpmStageLd = 10,
    PcRowBase = 20,
    PcPartColsR = 21,
    PcPartValsR = 22,
    PcSortLd = 23,
    PcSortSt = 24,
    PcCColsW = 25,
    PcCValsW = 26,
    PcLcpDispatch = 40,
};

/** Sort passes are capped to bound trace size for very long rows. */
constexpr int maxSortPasses = 6;

struct Builder
{
    const CscMatrix &a;
    const CsrMatrix &b;
    SystemShape shape;
    bool spm;
    Trace trace;
    AddressMap mem;

    Addr aColPtr, aRows, aVals, bRowPtr, bCols, bVals;
    Addr partCols, partVals, rowBase, workQueue;
    Addr cCols, cVals;

    std::vector<std::uint64_t> rowOffset; //!< partial bucket bases
    std::vector<std::uint64_t> rowCursor;
    std::vector<std::vector<std::pair<std::uint32_t, double>>> partials;

    double multiplyFlops = 0, mergeFlops = 0;

    // Pre-validated append handles, one per stream: the build only
    // appends (never reshapes the trace), so the writers stay valid
    // for its whole lifetime and every emit skips the per-op bounds
    // check of pushGpe/pushLcp.
    std::vector<Trace::StreamWriter> gpeW, lcpW;

    Builder(const CscMatrix &a_, const CsrMatrix &b_, SystemShape sh,
            bool spm_)
        : a(a_), b(b_), shape(sh), spm(spm_), trace(sh)
    {
        for (std::uint32_t g = 0; g < sh.numGpes(); ++g)
            gpeW.push_back(trace.gpeWriter(g));
        for (std::uint32_t t = 0; t < sh.tiles; ++t)
            lcpW.push_back(trace.lcpWriter(t));
    }

    void
    gpe(std::uint32_t g, Addr addr, std::uint16_t pc, OpKind kind)
    {
        gpeW[g].push({addr, pc, kind});
    }

    /** LCP work dispatch for one task assigned to gpe g. */
    void
    dispatch(std::uint32_t g, std::uint64_t task)
    {
        const std::uint32_t tile = g / shape.gpesPerTile;
        lcpW[tile].push({0, 0, OpKind::IntOp});
        lcpW[tile].push({workQueue + (task % 64) * wordSize,
                         PcLcpDispatch, OpKind::Store});
    }

    void
    layout()
    {
        const std::uint32_t n = a.cols();
        aColPtr = mem.alloc("a_colptr", (n + 1) * wordSize);
        aRows = mem.alloc("a_rows", a.nnz() * wordSize);
        aVals = mem.alloc("a_vals", a.nnz() * wordSize);
        bRowPtr = mem.alloc("b_rowptr", (b.rows() + 1) * wordSize);
        bCols = mem.alloc("b_cols", b.nnz() * wordSize);
        bVals = mem.alloc("b_vals", b.nnz() * wordSize);

        // Partial-product bucket capacity per output row:
        // sum over k of [row i in col k of A] * nnz(row k of B).
        rowOffset.assign(a.rows() + 1, 0);
        for (std::uint32_t k = 0; k < a.cols(); ++k) {
            const std::uint64_t bn = b.rowNnz(k);
            for (std::uint32_t i : a.colRows(k))
                rowOffset[i + 1] += bn;
        }
        for (std::uint32_t i = 0; i < a.rows(); ++i)
            rowOffset[i + 1] += rowOffset[i];
        const std::uint64_t slots = rowOffset[a.rows()];
        partCols = mem.alloc("part_cols",
                             std::max<std::uint64_t>(1, slots) *
                                 wordSize);
        partVals = mem.alloc("part_vals",
                             std::max<std::uint64_t>(1, slots) *
                                 wordSize);
        rowBase = mem.alloc("row_base", (a.rows() + 1) * wordSize);
        workQueue = mem.alloc("work_queue", 64 * wordSize);
        // Output sized pessimistically at the partial count; only the
        // merged prefix is written.
        cCols = mem.alloc("c_cols",
                          std::max<std::uint64_t>(1, slots) * wordSize);
        cVals = mem.alloc("c_vals",
                          std::max<std::uint64_t>(1, slots) * wordSize);
        rowCursor.assign(rowOffset.begin(), rowOffset.end() - 1);
        partials.assign(a.rows(), {});
    }

    void
    multiplyPhase()
    {
        trace.beginPhase("multiply");
        const std::uint32_t num_gpes = shape.numGpes();
        for (std::uint32_t k = 0; k < a.cols(); ++k) {
            const std::uint32_t g = k % num_gpes;
            dispatch(g, k);
            gpe(g, aColPtr + k * wordSize, PcAColPtr, OpKind::Load);
            gpe(g, aColPtr + (k + 1) * wordSize, PcAColPtr,
                OpKind::Load);
            gpe(g, bRowPtr + k * wordSize, PcBRowPtr, OpKind::Load);
            gpe(g, bRowPtr + (k + 1) * wordSize, PcBRowPtr,
                OpKind::Load);
            auto a_rows = a.colRows(k);
            auto a_vals = a.colVals(k);
            auto b_cols = b.rowCols(k);
            auto b_vals = b.rowVals(k);
            if (a_rows.empty() || b_cols.empty()) {
                gpe(g, 0, 0, OpKind::IntOp);
                continue;
            }
            if (spm)
                stageBRowToSpm(g, k, b_cols.size());
            const std::uint64_t ap0 = a.colPtr()[k];
            const std::uint64_t bp0 = b.rowPtr()[k];
            for (std::size_t p = 0; p < a_rows.size(); ++p) {
                const std::uint32_t i = a_rows[p];
                const double av = a_vals[p];
                gpe(g, aRows + (ap0 + p) * wordSize, PcARows,
                    OpKind::Load);
                gpe(g, aVals + (ap0 + p) * wordSize, PcAVals,
                    OpKind::FpLoad);
                multiplyFlops += 1;
                gpe(g, 0, 0, OpKind::IntOp); // cursor arithmetic
                for (std::size_t q = 0; q < b_cols.size(); ++q) {
                    if (spm) {
                        // B row staged in the scratchpad.
                        gpe(g, q * wordSize, 0, OpKind::SpmLoad);
                        gpe(g, 2048 + q * wordSize, 0, OpKind::SpmLoad);
                        multiplyFlops += 2;
                    } else {
                        gpe(g, bCols + (bp0 + q) * wordSize, PcBCols,
                            OpKind::Load);
                        gpe(g, bVals + (bp0 + q) * wordSize, PcBVals,
                            OpKind::FpLoad);
                        multiplyFlops += 1;
                    }
                    gpe(g, 0, 0, OpKind::FpOp); // a * b
                    multiplyFlops += 1;
                    const std::uint64_t slot = rowCursor[i]++;
                    gpe(g, partCols + slot * wordSize, PcPartColsW,
                        OpKind::Store);
                    gpe(g, partVals + slot * wordSize, PcPartValsW,
                        OpKind::FpStore);
                    multiplyFlops += 1;
                    partials[i].push_back({b_cols[q],
                                           av * b_vals[q]});
                }
            }
        }
    }

    /** SPM variant: DMA-style staging of row k of B into the GPE SPM. */
    void
    stageBRowToSpm(std::uint32_t g, std::uint32_t k,
                   std::size_t b_count)
    {
        const std::uint64_t bytes = b_count * 2 * wordSize;
        const std::uint64_t lines = (bytes + lineSize - 1) / lineSize;
        const std::uint64_t bp0 = b.rowPtr()[k];
        for (std::uint64_t l = 0; l < lines; ++l) {
            gpe(g, bCols + bp0 * wordSize + l * lineSize,
                PcSpmStageLd, OpKind::Load);
            gpe(g, l * lineSize, 0, OpKind::SpmStore);
            gpe(g, 0, 0, OpKind::IntOp); // orchestration
        }
    }

    CsrMatrix
    mergePhase()
    {
        trace.beginPhase("merge");
        const std::uint32_t num_gpes = shape.numGpes();
        CooMatrix c(a.rows(), b.cols());
        std::uint64_t out_cursor = 0;
        for (std::uint32_t r = 0; r < a.rows(); ++r) {
            auto &list = partials[r];
            const std::uint32_t g = r % num_gpes;
            dispatch(g, r);
            gpe(g, rowBase + r * wordSize, PcRowBase, OpKind::Load);
            gpe(g, 0, 0, OpKind::IntOp);
            if (list.empty())
                continue;
            const std::uint64_t base = rowOffset[r];
            const std::size_t m = list.size();
            for (std::size_t e = 0; e < m; ++e) {
                gpe(g, partCols + (base + e) * wordSize, PcPartColsR,
                    OpKind::Load);
                gpe(g, partVals + (base + e) * wordSize, PcPartValsR,
                    OpKind::FpLoad);
                mergeFlops += 1;
            }
            // Mergesort by column: log2(m) passes, each touching the
            // whole run (capped to bound trace size for hub rows).
            const int passes = std::min<int>(
                maxSortPasses,
                m > 1 ? static_cast<int>(std::ceil(std::log2(m))) : 0);
            const bool local = spm && m * 2 * wordSize <= 4096;
            for (int pass = 0; pass < passes; ++pass) {
                for (std::size_t e = 0; e < m; ++e) {
                    gpe(g, 0, 0, OpKind::IntOp); // compare
                    if (local) {
                        gpe(g, e * wordSize, 0, OpKind::SpmLoad);
                        gpe(g, e * wordSize, 0, OpKind::SpmStore);
                        mergeFlops += 2;
                    } else {
                        gpe(g, partVals + (base + e) * wordSize,
                            PcSortLd, OpKind::Load);
                        gpe(g, partVals + (base + e) * wordSize,
                            PcSortSt, OpKind::Store);
                    }
                }
            }
            std::sort(list.begin(), list.end());
            // Accumulate duplicates and emit the final row.
            std::size_t w = 0;
            while (w < m) {
                std::uint32_t col = list[w].first;
                double acc = list[w].second;
                ++w;
                while (w < m && list[w].first == col) {
                    acc += list[w].second;
                    gpe(g, 0, 0, OpKind::FpOp); // accumulate
                    mergeFlops += 1;
                    ++w;
                }
                if (acc != 0.0) {
                    gpe(g, cCols + out_cursor * wordSize, PcCColsW,
                        OpKind::Store);
                    gpe(g, cVals + out_cursor * wordSize, PcCValsW,
                        OpKind::FpStore);
                    mergeFlops += 1;
                    ++out_cursor;
                    c.add(r, col, acc);
                }
            }
        }
        return CsrMatrix(c);
    }
};

} // namespace

SpMSpMBuild
buildSpMSpM(const CscMatrix &a, const CsrMatrix &b, SystemShape shape,
            MemType l1_type)
{
    SADAPT_ASSERT(a.cols() == b.rows(), "SpMSpM dimension mismatch");
    Builder builder(a, b, shape, l1_type == MemType::Spm);
    builder.layout();
    builder.multiplyPhase();
    CsrMatrix product = builder.mergePhase();

    SpMSpMBuild out{std::move(builder.trace), std::move(product),
                    builder.multiplyFlops, builder.mergeFlops};
    return out;
}

} // namespace sadapt
