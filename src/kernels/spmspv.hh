/**
 * @file
 * SpMSpV device kernel: y = A * x with A in CSC and x stored as an
 * array of (index, value) tuples (Section 5.4).
 *
 * Unlike OP-SpMSpM, the multiply and merge steps happen in tandem
 * (Section 5.1): products are accumulated directly into a dense
 * accumulator region, followed by a gather/compaction pass.
 */

#ifndef SADAPT_KERNELS_SPMSPV_HH
#define SADAPT_KERNELS_SPMSPV_HH

#include "sim/config.hh"
#include "sim/trace.hh"
#include "sparse/csc.hh"
#include "sparse/sparse_vector.hh"

namespace sadapt {

/** Trace and functional result of one SpMSpV execution. */
struct SpMSpVBuild
{
    Trace trace;
    SparseVector result; //!< y = A * x, numerically exact
    double flops = 0;
};

/**
 * Build the SpMSpV trace.
 *
 * @param a the matrix, CSC.
 * @param x the sparse input vector.
 * @param shape system shape.
 * @param l1_type cache or SPM algorithm variant.
 */
SpMSpVBuild buildSpMSpV(const CscMatrix &a, const SparseVector &x,
                        SystemShape shape, MemType l1_type);

} // namespace sadapt

#endif // SADAPT_KERNELS_SPMSPV_HH
