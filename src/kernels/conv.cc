#include "kernels/conv.hh"

#include "common/logging.hh"
#include "kernels/address_map.hh"

namespace sadapt {

namespace {

enum Pc : std::uint16_t
{
    PcImage = 1,
    PcFilter = 2,
    PcOut = 3,
};

} // namespace

ConvBuild
buildConv2d(const std::vector<double> &image, std::uint32_t height,
            std::uint32_t width, const std::vector<double> &filter,
            std::uint32_t fsize, SystemShape shape)
{
    SADAPT_ASSERT(image.size() == std::size_t(height) * width,
                  "conv image shape mismatch");
    SADAPT_ASSERT(filter.size() == std::size_t(fsize) * fsize,
                  "conv filter shape mismatch");
    SADAPT_ASSERT(height >= fsize && width >= fsize,
                  "conv image smaller than filter");

    Trace trace(shape);
    AddressMap mem;
    const Addr img = mem.alloc("image", image.size() * wordSize);
    const Addr flt = mem.alloc("filter", filter.size() * wordSize);
    const std::uint32_t oh = height - fsize + 1;
    const std::uint32_t ow = width - fsize + 1;
    const Addr out_base = mem.alloc("out",
                                    std::size_t(oh) * ow * wordSize);

    std::vector<double> out(std::size_t(oh) * ow, 0.0);
    double flops = 0;
    const std::uint32_t num_gpes = shape.numGpes();

    trace.beginPhase("conv");
    for (std::uint32_t y = 0; y < oh; ++y) {
        const std::uint32_t g = y % num_gpes;
        const std::uint32_t tile = g / shape.gpesPerTile;
        trace.pushLcp(tile, {0, 0, OpKind::IntOp});
        // One bounds check per output row, not one per emitted op.
        auto gpe = trace.gpeWriter(g);
        for (std::uint32_t x = 0; x < ow; ++x) {
            double acc = 0.0;
            for (std::uint32_t fy = 0; fy < fsize; ++fy)
                for (std::uint32_t fx = 0; fx < fsize; ++fx) {
                    const std::size_t ii =
                        std::size_t(y + fy) * width + (x + fx);
                    gpe.push({img + ii * wordSize, PcImage,
                              OpKind::FpLoad});
                    gpe.push({flt +
                                  (std::size_t(fy) * fsize + fx) *
                                      wordSize,
                              PcFilter, OpKind::FpLoad});
                    gpe.push({0, 0, OpKind::FpOp});
                    flops += 3;
                    acc += image[ii] *
                        filter[std::size_t(fy) * fsize + fx];
                }
            gpe.push({out_base +
                          (std::size_t(y) * ow + x) * wordSize,
                      PcOut, OpKind::FpStore});
            flops += 1;
            out[std::size_t(y) * ow + x] = acc;
        }
    }
    return ConvBuild{std::move(trace), std::move(out), flops};
}

} // namespace sadapt
