/**
 * @file
 * Dense GEMM device kernel, used for the Section 7 ablation showing
 * that regular kernels gain little from dynamic reconfiguration
 * (Ideal Static within <5% of Oracle).
 */

#ifndef SADAPT_KERNELS_GEMM_HH
#define SADAPT_KERNELS_GEMM_HH

#include <vector>

#include "sim/trace.hh"

namespace sadapt {

/** Trace and functional result of one dense GEMM. */
struct GemmBuild
{
    Trace trace;
    std::vector<double> product; //!< row-major m x n
    double flops = 0;
};

/**
 * Build a blocked dense GEMM trace: C = A * B for row-major inputs.
 * Output rows are distributed round-robin across GPEs; the inner loop
 * streams a row of A against columns of B in 32-wide blocks.
 */
GemmBuild buildGemm(const std::vector<double> &a,
                    const std::vector<double> &b, std::uint32_t m,
                    std::uint32_t k, std::uint32_t n, SystemShape shape);

} // namespace sadapt

#endif // SADAPT_KERNELS_GEMM_HH
