/**
 * @file
 * Outer-product SpMSpM device kernel (OuterSPACE / Transmuter
 * algorithm, Sections 2.1 and 5.1).
 *
 * The kernel executes functionally and emits a two-phase trace:
 *
 *  - multiply: for each k, (column k of A in CSC) x (row k of B in CSR)
 *    produces partial products scattered into per-output-row buckets;
 *    columns are dispatched round-robin across GPEs by the LCPs.
 *  - merge: each output row's partial-product list is mergesorted by
 *    column and duplicates accumulated; rows are dispatched round-robin.
 *
 * The two explicit phases plus the per-column density variation give
 * rise to the explicit and implicit phase changes of Figure 1.
 */

#ifndef SADAPT_KERNELS_SPMSPM_HH
#define SADAPT_KERNELS_SPMSPM_HH

#include "sim/config.hh"
#include "sim/trace.hh"
#include "sparse/csc.hh"
#include "sparse/csr.hh"

namespace sadapt {

/** Trace and functional result of one SpMSpM execution. */
struct SpMSpMBuild
{
    Trace trace;
    CsrMatrix product;       //!< C = A * B, numerically exact
    double multiplyFlops = 0; //!< FP-ops emitted in the multiply phase
    double mergeFlops = 0;    //!< FP-ops emitted in the merge phase
};

/**
 * Build the outer-product SpMSpM trace.
 *
 * @param a left operand, CSC (Section 5.4 storage choice).
 * @param b right operand, CSR.
 * @param shape system shape (controls work partitioning).
 * @param l1_type cache emits demand loads; SPM emits staging transfers
 *        into the scratchpad plus SPM-local accesses (the "algorithm
 *        variant" dimension of Table 3).
 */
SpMSpMBuild buildSpMSpM(const CscMatrix &a, const CsrMatrix &b,
                        SystemShape shape, MemType l1_type);

} // namespace sadapt

#endif // SADAPT_KERNELS_SPMSPM_HH
