#include "kernels/inner_spgemm.hh"

#include "common/logging.hh"
#include "kernels/address_map.hh"
#include "sparse/coo.hh"

namespace sadapt {

namespace {

enum Pc : std::uint16_t
{
    PcARowPtr = 1,
    PcBColPtr = 2,
    PcACols = 3,
    PcAVals = 4,
    PcBRows = 5,
    PcBVals = 6,
    PcCColsW = 7,
    PcCValsW = 8,
    PcSpmStage = 9,
    PcLcpDispatch = 40,
};

} // namespace

SpMSpMBuild
buildInnerSpGemm(const CsrMatrix &a, const CscMatrix &b,
                 SystemShape shape, MemType l1_type)
{
    SADAPT_ASSERT(a.cols() == b.rows(), "SpGEMM dimension mismatch");
    const bool spm = l1_type == MemType::Spm;
    const std::uint32_t num_gpes = shape.numGpes();

    Trace trace(shape);
    AddressMap mem;
    const Addr a_rowptr = mem.alloc("a_rowptr",
                                    (a.rows() + 1) * wordSize);
    const Addr a_cols = mem.alloc(
        "a_cols", std::max<std::size_t>(1, a.nnz()) * wordSize);
    const Addr a_vals = mem.alloc(
        "a_vals", std::max<std::size_t>(1, a.nnz()) * wordSize);
    const Addr b_colptr = mem.alloc("b_colptr",
                                    (b.cols() + 1) * wordSize);
    const Addr b_rows = mem.alloc(
        "b_rows", std::max<std::size_t>(1, b.nnz()) * wordSize);
    const Addr b_vals = mem.alloc(
        "b_vals", std::max<std::size_t>(1, b.nnz()) * wordSize);
    const Addr workq = mem.alloc("workq", 64 * wordSize);
    // Output bound: nnz(A) * max-column-degree would be loose; size by
    // rows x cols worst case is too big — grow a COO functionally and
    // emit stores against a streamed output region.
    const Addr c_out = mem.alloc(
        "c_out",
        (std::max<std::size_t>(1, a.nnz() + b.nnz())) * 2 * wordSize);

    CooMatrix c(a.rows(), b.cols());
    double flops = 0;
    std::uint64_t out_cursor = 0;

    trace.beginPhase("inner");
    for (std::uint32_t i = 0; i < a.rows(); ++i) {
        const std::uint32_t g = i % num_gpes;
        const std::uint32_t tile = g / shape.gpesPerTile;
        auto lcp = trace.lcpWriter(tile);
        lcp.push({0, 0, OpKind::IntOp});
        lcp.push({workq + (i % 64) * wordSize,
                  PcLcpDispatch, OpKind::Store});
        // One bounds check per row, not one per emitted op.
        auto gpe = trace.gpeWriter(g);
        gpe.push({a_rowptr + i * wordSize, PcARowPtr, OpKind::Load});
        gpe.push({a_rowptr + (i + 1) * wordSize, PcARowPtr,
                  OpKind::Load});
        auto arow_cols = a.rowCols(i);
        auto arow_vals = a.rowVals(i);
        if (arow_cols.empty())
            continue;
        const std::uint64_t ap0 = a.rowPtr()[i];
        if (spm) {
            // Stage row i of A into the scratchpad once per row.
            const std::uint64_t bytes =
                arow_cols.size() * 2 * wordSize;
            for (std::uint64_t l = 0;
                 l < (bytes + lineSize - 1) / lineSize; ++l) {
                gpe.push({a_cols + ap0 * wordSize + l * lineSize,
                          PcSpmStage, OpKind::Load});
                gpe.push({l * lineSize, 0, OpKind::SpmStore});
                gpe.push({0, 0, OpKind::IntOp});
            }
        }
        for (std::uint32_t j = 0; j < b.cols(); ++j) {
            auto bcol_rows = b.colRows(j);
            auto bcol_vals = b.colVals(j);
            if (bcol_rows.empty())
                continue;
            gpe.push({b_colptr + j * wordSize, PcBColPtr,
                      OpKind::Load});
            // Sorted-list intersection: every comparison step touches
            // one element of either list.
            const std::uint64_t bp0 = b.colPtr()[j];
            std::size_t p = 0, q = 0;
            double acc = 0.0;
            bool any = false;
            while (p < arow_cols.size() && q < bcol_rows.size()) {
                gpe.push({0, 0, OpKind::IntOp}); // compare
                if (arow_cols[p] < bcol_rows[q]) {
                    if (spm) {
                        gpe.push({p * wordSize, 0, OpKind::SpmLoad});
                        flops += 1;
                    } else {
                        gpe.push({a_cols + (ap0 + p) * wordSize,
                                  PcACols, OpKind::Load});
                    }
                    ++p;
                } else if (arow_cols[p] > bcol_rows[q]) {
                    gpe.push({b_rows + (bp0 + q) * wordSize,
                              PcBRows, OpKind::Load});
                    ++q;
                } else {
                    gpe.push({a_vals + (ap0 + p) * wordSize,
                              PcAVals, OpKind::FpLoad});
                    gpe.push({b_vals + (bp0 + q) * wordSize,
                              PcBVals, OpKind::FpLoad});
                    gpe.push({0, 0, OpKind::FpOp});
                    flops += 3;
                    acc += arow_vals[p] * bcol_vals[q];
                    any = true;
                    ++p;
                    ++q;
                }
            }
            if (any && acc != 0.0) {
                gpe.push({c_out + out_cursor * 2 * wordSize,
                          PcCColsW, OpKind::Store});
                gpe.push({c_out + out_cursor * 2 * wordSize + wordSize,
                          PcCValsW, OpKind::FpStore});
                flops += 1;
                ++out_cursor;
                c.add(i, j, acc);
            }
        }
    }
    SpMSpMBuild out{std::move(trace), CsrMatrix(c), flops, 0.0};
    return out;
}

} // namespace sadapt
