#include "kernels/gemm.hh"

#include "common/logging.hh"
#include "kernels/address_map.hh"

namespace sadapt {

namespace {

enum Pc : std::uint16_t
{
    PcA = 1,
    PcB = 2,
    PcC = 3,
};

} // namespace

GemmBuild
buildGemm(const std::vector<double> &a, const std::vector<double> &b,
          std::uint32_t m, std::uint32_t k, std::uint32_t n,
          SystemShape shape)
{
    SADAPT_ASSERT(a.size() == std::size_t(m) * k &&
                  b.size() == std::size_t(k) * n,
                  "GEMM operand shape mismatch");
    Trace trace(shape);
    AddressMap mem;
    const Addr a_base = mem.alloc("a", a.size() * wordSize);
    const Addr b_base = mem.alloc("b", b.size() * wordSize);
    const Addr c_base = mem.alloc("c",
                                  std::size_t(m) * n * wordSize);

    std::vector<double> c(std::size_t(m) * n, 0.0);
    double flops = 0;
    const std::uint32_t num_gpes = shape.numGpes();
    constexpr std::uint32_t block = 32;

    trace.beginPhase("gemm");
    for (std::uint32_t i = 0; i < m; ++i) {
        const std::uint32_t g = i % num_gpes;
        const std::uint32_t tile = g / shape.gpesPerTile;
        trace.pushLcp(tile, {0, 0, OpKind::IntOp});
        // One bounds check per output row, not one per emitted op.
        auto gpe = trace.gpeWriter(g);
        for (std::uint32_t j0 = 0; j0 < n; j0 += block) {
            const std::uint32_t j1 = std::min(n, j0 + block);
            for (std::uint32_t p = 0; p < k; ++p) {
                gpe.push({a_base + (std::size_t(i) * k + p) * wordSize,
                          PcA, OpKind::FpLoad});
                flops += 1;
                const double av = a[std::size_t(i) * k + p];
                for (std::uint32_t j = j0; j < j1; ++j) {
                    gpe.push({b_base +
                                  (std::size_t(p) * n + j) * wordSize,
                              PcB, OpKind::FpLoad});
                    gpe.push({0, 0, OpKind::FpOp});
                    flops += 2;
                    c[std::size_t(i) * n + j] +=
                        av * b[std::size_t(p) * n + j];
                }
            }
            for (std::uint32_t j = j0; j < j1; ++j) {
                gpe.push({c_base +
                              (std::size_t(i) * n + j) * wordSize,
                          PcC, OpKind::FpStore});
                flops += 1;
            }
        }
    }
    return GemmBuild{std::move(trace), std::move(c), flops};
}

} // namespace sadapt
