/**
 * @file
 * Device address-space layout for trace-emitting kernels.
 *
 * Kernels allocate named regions in the device's (simulated) physical
 * address space with a simple bump allocator; the resulting addresses
 * drive the cache/memory models, so the layout determines spatial
 * locality exactly as a real binary's data layout would (the artifact
 * appendix calls this out as the main source of run-to-run variance).
 */

#ifndef SADAPT_KERNELS_ADDRESS_MAP_HH
#define SADAPT_KERNELS_ADDRESS_MAP_HH

#include <cstdint>
#include <map>
#include <string>

#include "common/logging.hh"
#include "common/types.hh"

namespace sadapt {

/**
 * Line-aligned bump allocator over the device address space.
 */
class AddressMap
{
  public:
    /** Allocate a named region; returns its base address. */
    Addr
    alloc(const std::string &name, std::uint64_t bytes)
    {
        SADAPT_ASSERT(!regions.contains(name),
                      "duplicate region name: " + name);
        const Addr aligned =
            (cursor + lineSize - 1) / lineSize * lineSize;
        regions[name] = aligned;
        cursor = aligned + bytes;
        return aligned;
    }

    /** Base address of a named region. */
    Addr
    base(const std::string &name) const
    {
        auto it = regions.find(name);
        SADAPT_ASSERT(it != regions.end(),
                      "unknown region name: " + name);
        return it->second;
    }

    /** Total bytes spanned by all allocations. */
    std::uint64_t footprint() const { return cursor; }

  private:
    Addr cursor = 0;
    std::map<std::string, Addr> regions;
};

} // namespace sadapt

#endif // SADAPT_KERNELS_ADDRESS_MAP_HH
