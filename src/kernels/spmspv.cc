#include "kernels/spmspv.hh"

#include "common/logging.hh"
#include "kernels/address_map.hh"

namespace sadapt {

namespace {

enum Pc : std::uint16_t
{
    PcXTuple = 1,
    PcColPtr = 2,
    PcARows = 3,
    PcAVals = 4,
    PcAccLd = 5,
    PcAccSt = 6,
    PcGather = 7,
    PcOutW = 8,
    PcSpmStage = 9,
    PcLcpDispatch = 40,
};

} // namespace

SpMSpVBuild
buildSpMSpV(const CscMatrix &a, const SparseVector &x, SystemShape shape,
            MemType l1_type)
{
    SADAPT_ASSERT(a.cols() == x.dim(), "SpMSpV dimension mismatch");
    const bool spm = l1_type == MemType::Spm;
    const std::uint32_t num_gpes = shape.numGpes();

    Trace trace(shape);
    AddressMap mem;
    const Addr x_tuples = mem.alloc("x_tuples",
                                    std::max<std::size_t>(1, x.nnz()) *
                                        2 * wordSize);
    const Addr col_ptr = mem.alloc("a_colptr",
                                   (a.cols() + 1) * wordSize);
    const Addr a_rows = mem.alloc(
        "a_rows", std::max<std::size_t>(1, a.nnz()) * wordSize);
    const Addr a_vals = mem.alloc(
        "a_vals", std::max<std::size_t>(1, a.nnz()) * wordSize);
    const Addr acc = mem.alloc("y_accumulator", a.rows() * wordSize);
    const Addr out = mem.alloc("y_out", a.rows() * 2 * wordSize);
    const Addr workq = mem.alloc("work_queue", 64 * wordSize);

    std::vector<double> dense(a.rows(), 0.0);
    std::vector<bool> touched(a.rows(), false);
    double flops = 0;

    auto dispatch = [&](std::uint32_t g, std::uint64_t task) {
        const std::uint32_t tile = g / shape.gpesPerTile;
        auto lcp = trace.lcpWriter(tile);
        lcp.push({0, 0, OpKind::IntOp});
        lcp.push({workq + (task % 64) * wordSize,
                  PcLcpDispatch, OpKind::Store});
    };

    // Multiply+merge in tandem: one task per nonzero of x.
    trace.beginPhase("spmspv");
    const auto &entries = x.entries();
    for (std::size_t e = 0; e < entries.size(); ++e) {
        const std::uint32_t g =
            static_cast<std::uint32_t>(e % num_gpes);
        const std::uint32_t j = entries[e].index;
        const double xv = entries[e].value;
        dispatch(g, e);
        // One bounds check per task, not one per emitted op.
        auto gpe = trace.gpeWriter(g);
        gpe.push({x_tuples + e * 2 * wordSize, PcXTuple,
                  OpKind::Load});
        gpe.push({x_tuples + e * 2 * wordSize + wordSize,
                  PcXTuple, OpKind::FpLoad});
        flops += 1;
        gpe.push({col_ptr + j * wordSize, PcColPtr, OpKind::Load});
        gpe.push({col_ptr + (j + 1) * wordSize, PcColPtr,
                  OpKind::Load});
        auto rows = a.colRows(j);
        auto vals = a.colVals(j);
        const std::uint64_t p0 = a.colPtr()[j];
        if (spm && !rows.empty()) {
            // Stage the column's entries into the scratchpad first.
            const std::uint64_t bytes = rows.size() * 2 * wordSize;
            const std::uint64_t lines =
                (bytes + lineSize - 1) / lineSize;
            for (std::uint64_t l = 0; l < lines; ++l) {
                gpe.push({a_rows + p0 * wordSize + l * lineSize,
                          PcSpmStage, OpKind::Load});
                gpe.push({l * lineSize, 0, OpKind::SpmStore});
                gpe.push({0, 0, OpKind::IntOp});
            }
        }
        for (std::size_t p = 0; p < rows.size(); ++p) {
            const std::uint32_t i = rows[p];
            if (spm) {
                gpe.push({p * wordSize, 0, OpKind::SpmLoad});
                gpe.push({2048 + p * wordSize, 0, OpKind::SpmLoad});
                flops += 2;
            } else {
                gpe.push({a_rows + (p0 + p) * wordSize, PcARows,
                          OpKind::Load});
                gpe.push({a_vals + (p0 + p) * wordSize, PcAVals,
                          OpKind::FpLoad});
                flops += 1;
            }
            gpe.push({0, 0, OpKind::FpOp}); // a * x
            // Read-modify-write of the dense accumulator.
            gpe.push({acc + i * wordSize, PcAccLd, OpKind::FpLoad});
            gpe.push({0, 0, OpKind::FpOp}); // accumulate
            gpe.push({acc + i * wordSize, PcAccSt, OpKind::FpStore});
            flops += 4; // mul, acc load, add, acc store
            dense[i] += vals[p] * xv;
            touched[i] = true;
        }
    }

    // Gather/compaction: each GPE scans a contiguous chunk of the
    // accumulator and appends nonzeros to the output tuple list.
    std::uint64_t out_cursor = 0;
    std::vector<SparseVector::Entry> result;
    const std::uint32_t chunk =
        (a.rows() + num_gpes - 1) / num_gpes;
    for (std::uint32_t g = 0; g < num_gpes; ++g) {
        const std::uint32_t lo = g * chunk;
        const std::uint32_t hi =
            std::min<std::uint32_t>(a.rows(), lo + chunk);
        auto gpe = trace.gpeWriter(g);
        for (std::uint32_t i = lo; i < hi; ++i) {
            gpe.push({acc + i * wordSize, PcGather, OpKind::FpLoad});
            flops += 1;
            gpe.push({0, 0, OpKind::IntOp}); // zero test
            if (touched[i] && dense[i] != 0.0) {
                gpe.push({out + out_cursor * 2 * wordSize,
                          PcOutW, OpKind::Store});
                gpe.push({out + out_cursor * 2 * wordSize + wordSize,
                          PcOutW, OpKind::FpStore});
                flops += 1;
                ++out_cursor;
                result.push_back({i, dense[i]});
            }
        }
    }

    return SpMSpVBuild{std::move(trace),
                       SparseVector(a.rows(), std::move(result)),
                       flops};
}

} // namespace sadapt
