/**
 * @file
 * 2D convolution device kernel (valid padding, single channel), the
 * second regular kernel of the Section 7 ablation.
 */

#ifndef SADAPT_KERNELS_CONV_HH
#define SADAPT_KERNELS_CONV_HH

#include <vector>

#include "sim/trace.hh"

namespace sadapt {

/** Trace and functional result of one convolution. */
struct ConvBuild
{
    Trace trace;
    std::vector<double> output; //!< (h-f+1) x (w-f+1), row-major
    double flops = 0;
};

/**
 * Build the convolution trace. Output rows are distributed round-robin
 * across GPEs; the filter is re-loaded per output (it stays resident
 * in the cache model).
 */
ConvBuild buildConv2d(const std::vector<double> &image,
                      std::uint32_t height, std::uint32_t width,
                      const std::vector<double> &filter,
                      std::uint32_t fsize, SystemShape shape);

} // namespace sadapt

#endif // SADAPT_KERNELS_CONV_HH
