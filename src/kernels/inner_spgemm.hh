/**
 * @file
 * Inner-product SpGEMM with compression (the alternative algorithm
 * Section 5.4 mentions via Sparse-TPU): C[i][j] is computed by
 * intersecting row i of A (CSR) with column j of B (CSC), visiting
 * only (i, j) pairs where both are nonempty. Outer-product SpMSpM is
 * superior at the density levels the paper evaluates; this kernel
 * exists to reproduce that comparison (see
 * bench/ablation_algorithms).
 */

#ifndef SADAPT_KERNELS_INNER_SPGEMM_HH
#define SADAPT_KERNELS_INNER_SPGEMM_HH

#include "kernels/spmspm.hh"

namespace sadapt {

/**
 * Build the inner-product SpGEMM trace: C = A * B with A in CSR and B
 * in CSC. Output rows are dispatched round-robin across GPEs; each
 * row-column intersection walks both sorted index lists.
 */
SpMSpMBuild buildInnerSpGemm(const CsrMatrix &a, const CscMatrix &b,
                             SystemShape shape, MemType l1_type);

} // namespace sadapt

#endif // SADAPT_KERNELS_INNER_SPGEMM_HH
