#include "adapt/metrics.hh"

#include <cmath>

#include "common/logging.hh"

namespace sadapt {

std::string
optModeName(OptMode mode)
{
    return mode == OptMode::EnergyEfficient ? "Energy-Efficient"
                                            : "Power-Performance";
}

double
gflopsOf(double flops, Seconds seconds)
{
    return seconds > 0.0 ? flops / seconds / 1e9 : 0.0;
}

double
gflopsPerWattOf(double flops, Joules joules)
{
    return joules > 0.0 ? flops / joules / 1e9 : 0.0;
}

double
metricValue(OptMode mode, double flops, Seconds seconds, Joules joules)
{
    if (seconds <= 0.0 || joules <= 0.0)
        return 0.0;
    const double gf = gflopsOf(flops, seconds);
    const Watts watts = joules / seconds;
    if (mode == OptMode::EnergyEfficient)
        return gf / watts;
    return gf * gf * gf / watts;
}

} // namespace sadapt
