/**
 * @file
 * Training-set construction (Sections 4.2 and 5.1, Table 3).
 *
 * Uniform-random matrices (whole-phase behaviour is then uniform) are
 * swept over dimension, density and external memory bandwidth; each
 * sweep point is simulated under K sampled configurations and the
 * Figure 4 search labels every sample with the phase's best
 * configuration. The key Section 4.2 trick applies: the sample's own
 * configuration parameters are part of its feature vector, so each
 * phase yields K training examples rather than one.
 */

#ifndef SADAPT_ADAPT_TRAINER_HH
#define SADAPT_ADAPT_TRAINER_HH

#include <array>

#include "adapt/search.hh"
#include "ml/dataset.hh"

namespace sadapt {

/**
 * One labelled dataset per configuration parameter (the predictive
 * model is an ensemble of conditionally independent per-parameter
 * functions, Section 4.1).
 */
struct TrainingSet
{
    std::array<Dataset, numParams> perParam;

    std::size_t size() const { return perParam[0].size(); }

    /** Append one example: features + the best config's labels. */
    void add(const std::vector<double> &features, const HwConfig &best);

    TrainingSet();
};

/** The Table 3 sweep, at configurable (reduced) scale. */
struct TrainerOptions
{
    OptMode mode = OptMode::EnergyEfficient;
    MemType l1Type = MemType::Cache;
    SystemShape shape{2, 8};

    bool includeSpMSpM = true;
    bool includeSpMSpV = true;

    /** Matrix dimensions per kernel (paper: 128->1k / 256->8k, x2). */
    std::vector<std::uint32_t> spmspmDims{128, 256};
    std::vector<std::uint32_t> spmspvDims{256, 512};

    /** Matrix densities (paper: 0.2% -> 13%, x2). */
    std::vector<double> densities{0.005, 0.02, 0.08};

    /** External memory bandwidths in bytes/s (paper: 0.01->100 GB/s). */
    std::vector<double> bandwidths{0.1e9, 1e9, 10e9};

    /** Density of the SpMSpV input vector (Section 6.1.1: 50%). */
    double vectorDensity = 0.5;

    SearchParams search;
    std::uint64_t seed = 1;
};

/**
 * Aggregate the Table 2 counters over the epochs of one phase
 * (cycle-weighted average); phase < 0 aggregates everything.
 */
PerfCounterSample aggregateCounters(const std::vector<EpochRecord> &recs,
                                    int phase);

/** Run the sweep and construct the training set. */
TrainingSet buildTrainingSet(const TrainerOptions &opts);

} // namespace sadapt

#endif // SADAPT_ADAPT_TRAINER_HH
