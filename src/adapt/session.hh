/**
 * @file
 * The re-entrant per-session core of the SparseAdapt control loop.
 *
 * SessionState is everything one adaptation stream mutates epoch to
 * epoch — current configuration, simulated clock, decision history,
 * guard/watchdog defenses and the fault-event cursor — and
 * SessionContext is everything it only reads (predictor, policy, cost
 * model, observer). stepEpoch() advances one session by exactly one
 * epoch; it touches nothing outside its two arguments (no
 * function-local statics, no globals), so any number of sessions can
 * be interleaved in any order — or driven concurrently from the serve
 * layer, one session per state object — and each one's decision
 * sequence is bit-identical to running it alone.
 *
 * The batch drivers in adapt/controllers.cc (sparseAdaptSchedule,
 * robustSparseAdaptSchedule) are thin loops over stepEpoch(); their
 * journals and schedules are byte-for-byte what they were before the
 * extraction (tests/test_obs_determinism.cc pins the journal shape,
 * tests/test_controllers.cc pins the interleaving contract).
 */

#ifndef SADAPT_ADAPT_SESSION_HH
#define SADAPT_ADAPT_SESSION_HH

#include <cstddef>

#include "adapt/guard.hh"
#include "adapt/policy.hh"
#include "adapt/predictor.hh"
#include "obs/observer.hh"
#include "sim/faults.hh"
#include "sim/reconfig.hh"
#include "sim/schedule.hh"
#include "sim/transmuter.hh"

namespace sadapt {

/**
 * Read-only collaborators of one session. All pointers are borrowed
 * and must outlive the session; `predictor`, `policy` and `costModel`
 * are required, the rest optional.
 */
struct SessionContext
{
    const Predictor *predictor = nullptr;
    const Policy *policy = nullptr;
    OptMode mode = OptMode::EnergyEfficient;
    const ReconfigCostModel *costModel = nullptr;

    /** Faultable telemetry/command path; null = clean channels. */
    FaultInjector *faults = nullptr;

    /**
     * Select the robust loop body (guard/watchdog defenses and the
     * fault channel). The plain body is NOT the robust body with null
     * faults: the robust loop journals guard verdicts and watchdog
     * gauges even on clean telemetry.
     */
    bool robust = false;

    /** Robust loop only: disable the TelemetryGuard + Watchdog. */
    bool useGuard = true;

    /** Optional decision-trail sink; pure observer (may be null). */
    obs::RunObserver *observer = nullptr;
};

/** Everything one adaptation session mutates across epochs. */
struct SessionState
{
    HwConfig current;       //!< configuration in effect this epoch
    HwConfig safe;          //!< watchdog revert target (baseline)
    double tNow = 0.0;      //!< simulated seconds elapsed
    std::size_t epoch = 0;  //!< next epoch index to step
    Schedule schedule;      //!< configuration actually run, per epoch

    TelemetryGuard guard;
    Watchdog watchdog;

    /** Fault-injector events already journaled (cursor into its log). */
    std::size_t faultsSeen = 0;
};

/**
 * Initialize a session at `initial`: safe config derived from the L1
 * type, guard/watchdog built from the given options with the context's
 * observer attached, fault cursor synced to the injector's log.
 */
SessionState
makeSessionState(const HwConfig &initial, const SessionContext &ctx,
                 const GuardOptions &guard_opts = GuardOptions{},
                 const WatchdogOptions &watchdog_opts =
                     WatchdogOptions{});

/**
 * Advance one session by one epoch: journal the epoch's telemetry,
 * predict (or take `predicted_hint`), filter through the policy (and,
 * on the robust path, the guard/watchdog and fault channels), apply
 * the reconfiguration and advance the session clock.
 *
 * `rec` is the just-finished epoch's record under `s.current` — i.e.
 * `db.epochs(s.current)[s.epoch]` for an EpochDb-backed caller.
 *
 * `predicted_hint`, when non-null, must equal
 * `ctx.predictor->predict(s.current, rec.counters)`; the serve layer's
 * batched-inference stage precomputes it off-thread (the prediction is
 * a pure function of those two inputs). Plain path only — the robust
 * path's prediction input may be guard-repaired, so hints are ignored
 * there.
 */
void stepEpoch(SessionState &s, const SessionContext &ctx,
               const EpochRecord &rec,
               const HwConfig *predicted_hint = nullptr);

} // namespace sadapt

#endif // SADAPT_ADAPT_SESSION_HH
