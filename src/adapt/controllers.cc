#include "adapt/controllers.hh"

#include <algorithm>
#include <cmath>

#include "adapt/telemetry.hh"
#include "common/logging.hh"

namespace sadapt {

HwConfig
idealStaticConfig(EpochDb &db, std::span<const HwConfig> candidates,
                  OptMode mode)
{
    SADAPT_ASSERT(!candidates.empty(), "no candidates");
    db.ensure(candidates);
    HwConfig best = candidates.front();
    double best_metric = -1.0;
    for (const HwConfig &cfg : candidates) {
        const SimResult &res = db.result(cfg);
        const double m = metricValue(mode, res.totalFlops(),
                                     res.totalSeconds(),
                                     res.totalEnergy());
        if (m > best_metric) {
            best_metric = m;
            best = cfg;
        }
    }
    return best;
}

Schedule
idealGreedySchedule(EpochDb &db, std::span<const HwConfig> candidates,
                    OptMode mode, const ReconfigCostModel &cost_model,
                    const HwConfig &initial)
{
    SADAPT_ASSERT(!candidates.empty(), "no candidates");
    db.ensure(candidates);
    const bool ee = mode == OptMode::EnergyEfficient;
    const std::size_t num_epochs = db.numEpochs();
    Schedule schedule;
    schedule.configs.reserve(num_epochs);
    HwConfig current = initial;
    for (std::size_t e = 0; e < num_epochs; ++e) {
        HwConfig best = current;
        double best_metric = -1.0;
        for (const HwConfig &cfg : candidates) {
            const EpochRecord &rec = db.epochs(cfg)[e];
            const ReconfigCost rc = cost_model.cost(current, cfg, ee);
            const double m = metricValue(
                mode, rec.flops, rec.seconds + rc.seconds,
                rec.totalEnergy() + rc.energy);
            if (m > best_metric) {
                best_metric = m;
                best = cfg;
            }
        }
        schedule.configs.push_back(best);
        current = best;
    }
    return schedule;
}

namespace {

/** A partial-schedule label for the Pareto oracle DP. */
struct Label
{
    Seconds t;
    Joules e;
    std::int32_t prevCandidate; //!< candidate index at epoch-1
    std::int32_t prevLabel;     //!< label index within that candidate
};

/** Keep only Pareto-nondominated (t, e) labels, bounded in count. */
void
pruneLabels(std::vector<Label> &labels, std::size_t cap)
{
    std::sort(labels.begin(), labels.end(),
              [](const Label &a, const Label &b) {
                  return a.t != b.t ? a.t < b.t : a.e < b.e;
              });
    std::vector<Label> kept;
    double best_e = std::numeric_limits<double>::infinity();
    for (const Label &l : labels) {
        if (l.e < best_e - 1e-18) {
            kept.push_back(l);
            best_e = l.e;
        }
    }
    if (kept.size() > cap) {
        // Thin uniformly along the frontier to bound state.
        std::vector<Label> thinned;
        for (std::size_t i = 0; i < cap; ++i)
            thinned.push_back(
                kept[i * (kept.size() - 1) / (cap - 1)]);
        kept = std::move(thinned);
    }
    labels = std::move(kept);
}

Schedule
oracleEnergy(EpochDb &db, std::span<const HwConfig> candidates,
             const ReconfigCostModel &cost_model,
             const HwConfig &initial)
{
    // Additive objective: plain DP over the epoch x candidate DAG.
    const std::size_t num_epochs = db.numEpochs();
    const std::size_t n = candidates.size();
    std::vector<std::vector<Joules>> cost(
        num_epochs, std::vector<Joules>(n));
    std::vector<std::vector<std::int32_t>> back(
        num_epochs, std::vector<std::int32_t>(n, -1));

    // Memoized pairwise transition energies.
    std::vector<std::vector<Joules>> trans(n, std::vector<Joules>(n));
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            trans[i][j] =
                cost_model.cost(candidates[i], candidates[j], true)
                    .energy;

    for (std::size_t c = 0; c < n; ++c) {
        cost[0][c] =
            cost_model.cost(initial, candidates[c], true).energy +
            db.epochs(candidates[c])[0].totalEnergy();
    }
    for (std::size_t e = 1; e < num_epochs; ++e) {
        for (std::size_t c = 0; c < n; ++c) {
            const Joules epoch_e =
                db.epochs(candidates[c])[e].totalEnergy();
            Joules best = std::numeric_limits<double>::infinity();
            std::int32_t best_prev = -1;
            for (std::size_t p = 0; p < n; ++p) {
                const Joules total =
                    cost[e - 1][p] + trans[p][c] + epoch_e;
                if (total < best) {
                    best = total;
                    best_prev = static_cast<std::int32_t>(p);
                }
            }
            cost[e][c] = best;
            back[e][c] = best_prev;
        }
    }
    std::size_t final_c = 0;
    for (std::size_t c = 1; c < n; ++c)
        if (cost[num_epochs - 1][c] < cost[num_epochs - 1][final_c])
            final_c = c;

    Schedule schedule;
    schedule.configs.assign(num_epochs, initial);
    std::int32_t c = static_cast<std::int32_t>(final_c);
    for (std::size_t e = num_epochs; e-- > 0;) {
        schedule.configs[e] = candidates[c];
        c = back[e][c];
    }
    return schedule;
}

Schedule
oraclePowerPerf(EpochDb &db, std::span<const HwConfig> candidates,
                const ReconfigCostModel &cost_model,
                const HwConfig &initial)
{
    // Minimize T^2 * E: non-additive, so carry a Pareto frontier of
    // (T, E) partial sums per (epoch, candidate) node.
    constexpr std::size_t label_cap = 24;
    const std::size_t num_epochs = db.numEpochs();
    const std::size_t n = candidates.size();

    std::vector<std::vector<ReconfigCost>> trans(
        n, std::vector<ReconfigCost>(n));
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            trans[i][j] = cost_model.cost(candidates[i],
                                          candidates[j], false);

    // labels[e][c] -> Pareto set of partial (T, E).
    std::vector<std::vector<std::vector<Label>>> labels(
        num_epochs, std::vector<std::vector<Label>>(n));

    for (std::size_t c = 0; c < n; ++c) {
        const ReconfigCost rc =
            cost_model.cost(initial, candidates[c], false);
        const EpochRecord &rec = db.epochs(candidates[c])[0];
        labels[0][c].push_back({rec.seconds + rc.seconds,
                                rec.totalEnergy() + rc.energy, -1,
                                -1});
    }
    for (std::size_t e = 1; e < num_epochs; ++e) {
        for (std::size_t c = 0; c < n; ++c) {
            const EpochRecord &rec = db.epochs(candidates[c])[e];
            std::vector<Label> merged;
            for (std::size_t p = 0; p < n; ++p) {
                const ReconfigCost &rc = trans[p][c];
                for (std::size_t li = 0; li < labels[e - 1][p].size();
                     ++li) {
                    const Label &prev = labels[e - 1][p][li];
                    merged.push_back(
                        {prev.t + rc.seconds + rec.seconds,
                         prev.e + rc.energy + rec.totalEnergy(),
                         static_cast<std::int32_t>(p),
                         static_cast<std::int32_t>(li)});
                }
            }
            pruneLabels(merged, label_cap);
            labels[e][c] = std::move(merged);
        }
    }

    // Pick the global minimum of T^2 * E among final labels.
    double best_obj = std::numeric_limits<double>::infinity();
    std::int32_t best_c = -1, best_l = -1;
    for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t li = 0; li < labels[num_epochs - 1][c].size();
             ++li) {
            const Label &l = labels[num_epochs - 1][c][li];
            const double obj = l.t * l.t * l.e;
            if (obj < best_obj) {
                best_obj = obj;
                best_c = static_cast<std::int32_t>(c);
                best_l = static_cast<std::int32_t>(li);
            }
        }
    }
    SADAPT_ASSERT(best_c >= 0, "oracle DP produced no labels");

    Schedule schedule;
    schedule.configs.assign(num_epochs, initial);
    std::int32_t c = best_c, li = best_l;
    for (std::size_t e = num_epochs; e-- > 0;) {
        schedule.configs[e] = candidates[c];
        const Label &l = labels[e][c][li];
        c = l.prevCandidate;
        li = l.prevLabel;
    }
    return schedule;
}

} // namespace

Schedule
oracleSchedule(EpochDb &db, std::span<const HwConfig> candidates,
               OptMode mode, const ReconfigCostModel &cost_model,
               const HwConfig &initial)
{
    SADAPT_ASSERT(!candidates.empty(), "no candidates");
    db.ensure(candidates);
    if (mode == OptMode::EnergyEfficient)
        return oracleEnergy(db, candidates, cost_model, initial);
    return oraclePowerPerf(db, candidates, cost_model, initial);
}

namespace {

/**
 * Journaling hooks of the SparseAdapt loops. Every function is a
 * no-op on a null observer; none of them feeds anything back into the
 * control flow, so an attached observer cannot change a decision.
 */

void
emitEpochEvent(obs::RunObserver *o, std::size_t epoch, double t_now,
               const HwConfig &cfg, const EpochRecord &rec,
               OptMode mode)
{
    if (o == nullptr)
        return;
    o->beginEpoch(epoch, t_now);
    o->emit("adapt/controller", "epoch",
            {{"cfg", cfg.toSpec()},
             {"seconds", rec.seconds},
             {"flops", rec.flops},
             {"energy_j", rec.totalEnergy()},
             {"metric", metricValue(mode, rec.flops, rec.seconds,
                                    rec.totalEnergy())}});
    o->metrics().counter("adapt/controller/epochs").add();
}

void
emitPrediction(obs::RunObserver *o, const HwConfig &predicted)
{
    if (o == nullptr)
        return;
    std::vector<std::pair<std::string, obs::FieldValue>> fields;
    fields.emplace_back("cfg", predicted.toSpec());
    for (Param p : allParams())
        fields.emplace_back(
            paramName(p),
            static_cast<std::int64_t>(paramValue(predicted, p)));
    o->emit("adapt/predictor", "prediction", std::move(fields));
}

void
emitPolicyDecisions(obs::RunObserver *o, const PolicyOutcome &outcome)
{
    if (o == nullptr)
        return;
    for (const PolicyDecision &d : outcome.decisions) {
        o->emit("adapt/policy", "policy",
                {{"param", paramName(d.param)},
                 {"from", static_cast<std::int64_t>(d.from)},
                 {"to", static_cast<std::int64_t>(d.to)},
                 {"accepted", d.accepted},
                 {"cost_s", d.cost.seconds},
                 {"cost_j", d.cost.energy},
                 {"flush", d.cost.flushL1 || d.cost.flushL2}});
        o->metrics().counter("adapt/policy/proposed").add();
        o->metrics()
            .counter(d.accepted ? "adapt/policy/accepted"
                                : "adapt/policy/vetoed")
            .add();
    }
}

void
emitReconfig(obs::RunObserver *o, const HwConfig &from,
             const HwConfig &to, const ReconfigCostModel &cost_model,
             bool ee)
{
    if (o == nullptr || from == to)
        return;
    const ReconfigCost rc = cost_model.cost(from, to, ee);
    o->emit("adapt/controller", "reconfig",
            {{"from", from.toSpec()},
             {"to", to.toSpec()},
             {"cost_s", rc.seconds},
             {"cost_j", rc.energy},
             {"flush_l1", rc.flushL1},
             {"flush_l2", rc.flushL2}});
    o->metrics().counter("adapt/controller/reconfigs").add();
}

} // namespace

Schedule
sparseAdaptSchedule(EpochDb &db, const Predictor &predictor,
                    const Policy &policy, OptMode mode,
                    const ReconfigCostModel &cost_model,
                    const HwConfig &initial,
                    obs::RunObserver *observer)
{
    const bool ee = mode == OptMode::EnergyEfficient;
    const std::size_t num_epochs = db.numEpochs();
    Schedule schedule;
    schedule.configs.reserve(num_epochs);
    HwConfig current = initial;
    double t_now = 0.0;
    for (std::size_t e = 0; e < num_epochs; ++e) {
        schedule.configs.push_back(current);
        // Telemetry of the epoch that just ran under `current`.
        const EpochRecord &rec = db.epochs(current)[e];
        emitEpochEvent(observer, e, t_now, current, rec, mode);
        const HwConfig predicted =
            predictor.predict(current, rec.counters);
        emitPrediction(observer, predicted);
        const PolicyOutcome outcome = policy.applyDetailed(
            current, predicted, rec.seconds, cost_model, ee);
        emitPolicyDecisions(observer, outcome);
        emitReconfig(observer, current, outcome.config, cost_model,
                     ee);
        t_now += rec.seconds;
        if (!(outcome.config == current))
            t_now += cost_model.cost(current, outcome.config, ee)
                         .seconds;
        current = outcome.config;
    }
    return schedule;
}

namespace {

/** Journal "fault" events appended to the injector log this epoch. */
void
emitNewFaultEvents(obs::RunObserver *o, FaultInjector *faults,
                   std::size_t &seen)
{
    if (faults == nullptr)
        return;
    const std::vector<FaultEvent> &log = faults->events();
    if (o != nullptr) {
        for (std::size_t i = seen; i < log.size(); ++i) {
            o->emit("sim/faults", "fault",
                    {{"kind", faultKindName(log[i].kind)},
                     {"detail", log[i].detail}});
            o->metrics().counter("sim/faults/injected").add();
        }
    }
    seen = log.size();
}

void
emitGuardEvent(obs::RunObserver *o, const std::string &verdict,
               std::size_t flagged)
{
    if (o == nullptr)
        return;
    o->emit("adapt/guard", "guard",
            {{"verdict", verdict},
             {"flagged", static_cast<std::int64_t>(flagged)}});
    o->metrics().counter("adapt/guard/" + verdict).add();
}

} // namespace

RobustAdaptResult
robustSparseAdaptSchedule(EpochDb &db, const Predictor &predictor,
                          const Policy &policy, OptMode mode,
                          const ReconfigCostModel &cost_model,
                          const HwConfig &initial,
                          FaultInjector *faults,
                          const RobustAdaptOptions &opts,
                          obs::RunObserver *observer)
{
    const bool ee = mode == OptMode::EnergyEfficient;
    const std::size_t num_epochs = db.numEpochs();
    const HwConfig safe = baselineConfig(initial.l1Type);

    TelemetryGuard guard(opts.guard);
    Watchdog watchdog(opts.watchdog);
    watchdog.attachObserver(observer);
    std::size_t faults_seen =
        faults != nullptr ? faults->events().size() : 0;

    RobustAdaptResult out;
    out.schedule.configs.reserve(num_epochs);
    HwConfig current = initial;
    double t_now = 0.0;
    for (std::size_t e = 0; e < num_epochs; ++e) {
        out.schedule.configs.push_back(current);
        const EpochRecord &rec = db.epochs(current)[e];
        const auto epoch = static_cast<std::uint32_t>(e);
        emitEpochEvent(observer, e, t_now, current, rec, mode);

        std::optional<PerfCounterSample> received = faults
            ? faults->filterSample(epoch, rec.counters)
            : std::optional<PerfCounterSample>(rec.counters);

        HwConfig commanded = current;
        if (!opts.useGuard) {
            // Naive loop: a missing sample reads as all-zero counters
            // (stuck telemetry register); corruption feeds the
            // predictor verbatim.
            const PerfCounterSample sample =
                received.value_or(PerfCounterSample{});
            const HwConfig predicted =
                predictor.predict(current, sample);
            emitPrediction(observer, predicted);
            const PolicyOutcome outcome = policy.applyDetailed(
                current, predicted, rec.seconds, cost_model, ee);
            emitPolicyDecisions(observer, outcome);
            commanded = outcome.config;
        } else {
            PerfCounterSample sample;
            bool usable = false;
            if (!received) {
                guard.recordMissing();
                emitGuardEvent(observer, "missing", 0);
            } else {
                sample = *received;
                const GuardReport report = guard.inspect(sample);
                emitGuardEvent(observer,
                               sampleVerdictName(report.verdict),
                               report.flagged.size());
                if (report.verdict == SampleVerdict::Bad) {
                    // Discard; fall back to last-known-good features.
                    if (guard.lastKnownGood()) {
                        sample = *guard.lastKnownGood();
                        usable = true;
                    }
                } else {
                    usable = true;
                }
            }

            const double realized = metricValue(
                mode, rec.flops, rec.seconds, rec.totalEnergy());
            const Watchdog::Decision wd =
                watchdog.observe(realized, usable);
            if (observer != nullptr)
                observer->metrics()
                    .gauge("adapt/watchdog/reference")
                    .set(watchdog.reference());
            if (wd.revert) {
                commanded = safe;
            } else if (wd.hold || !usable) {
                commanded = current;
            } else {
                const HwConfig predicted =
                    predictor.predict(current, sample);
                emitPrediction(observer, predicted);
                const PolicyOutcome outcome = policy.applyDetailed(
                    current, predicted, rec.seconds, cost_model, ee);
                emitPolicyDecisions(observer, outcome);
                commanded = outcome.config;
            }
        }

        current = faults
            ? faults->applyCommand(epoch, current, commanded)
            : commanded;
        emitNewFaultEvents(observer, faults, faults_seen);
        emitReconfig(observer, out.schedule.configs.back(), current,
                     cost_model, ee);
        t_now += rec.seconds;
        if (!(current == out.schedule.configs.back()))
            t_now += cost_model
                         .cost(out.schedule.configs.back(), current,
                               ee)
                         .seconds;
    }

    if (faults) {
        out.faults = faults->stats();
        if (observer != nullptr) {
            observer->metrics()
                .counter("sim/faults/samples_dropped")
                .add(out.faults.samplesDropped);
        }
    }
    out.guard = guard.stats();
    out.watchdogReverts = watchdog.reverts();
    out.watchdogHeldEpochs = watchdog.heldEpochs();
    if (observer != nullptr) {
        observer->metrics()
            .counter("adapt/watchdog/reverts")
            .add(out.watchdogReverts);
        observer->metrics()
            .counter("adapt/watchdog/held_epochs")
            .add(out.watchdogHeldEpochs);
    }
    return out;
}

ScheduleEval
evaluateProfileAdapt(EpochDb &db, const Schedule &base,
                     const ReconfigCostModel &cost_model, OptMode mode,
                     const HwConfig &initial,
                     const ProfileAdaptOptions &opts)
{
    SADAPT_ASSERT(base.configs.size() == db.numEpochs(),
                  "schedule length must equal epoch count");
    SADAPT_ASSERT(opts.profilingFraction > 0.0 &&
                  opts.profilingFraction < 1.0,
                  "profiling fraction must be in (0, 1)");
    const bool ee = mode == OptMode::EnergyEfficient;
    const double f = opts.profilingFraction;

    ScheduleEval ev;
    HwConfig current = initial;
    for (std::size_t e = 0; e < base.configs.size(); ++e) {
        const HwConfig &chosen = base.configs[e];
        const bool change = !(chosen == current);
        const bool profile_this_epoch = !opts.ideal || change || e == 0;
        const EpochRecord &rec_sel = db.epochs(chosen)[e];
        if (profile_this_epoch) {
            // Detour: switch to the profiling configuration, run the
            // first fraction of the epoch there (still useful work),
            // then switch to the selected configuration.
            const EpochRecord &rec_prof =
                db.epochs(opts.profilingConfig)[e];
            const ReconfigCost to_prof = cost_model.cost(
                current, opts.profilingConfig, ee);
            const ReconfigCost to_sel = cost_model.cost(
                opts.profilingConfig, chosen, ee);
            ev.reconfigSeconds += to_prof.seconds + to_sel.seconds;
            ev.reconfigEnergy += to_prof.energy + to_sel.energy;
            ev.seconds += to_prof.seconds + to_sel.seconds;
            ev.energy += to_prof.energy + to_sel.energy;
            ev.reconfigCount += 2;
            ev.flops += rec_prof.flops * f + rec_sel.flops * (1 - f);
            ev.seconds +=
                rec_prof.seconds * f + rec_sel.seconds * (1 - f);
            ev.energy += rec_prof.totalEnergy() * f +
                rec_sel.totalEnergy() * (1 - f);
        } else {
            ev.flops += rec_sel.flops;
            ev.seconds += rec_sel.seconds;
            ev.energy += rec_sel.totalEnergy();
        }
        current = chosen;
    }
    return ev;
}

} // namespace sadapt
