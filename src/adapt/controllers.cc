#include "adapt/controllers.hh"

#include <algorithm>
#include <cmath>

#include "adapt/session.hh"
#include "adapt/telemetry.hh"
#include "common/logging.hh"

namespace sadapt {

HwConfig
idealStaticConfig(EpochDb &db, std::span<const HwConfig> candidates,
                  OptMode mode)
{
    SADAPT_ASSERT(!candidates.empty(), "no candidates");
    db.ensure(candidates);
    HwConfig best = candidates.front();
    double best_metric = -1.0;
    for (const HwConfig &cfg : candidates) {
        const SimResult &res = db.result(cfg);
        const double m = metricValue(mode, res.totalFlops(),
                                     res.totalSeconds(),
                                     res.totalEnergy());
        if (m > best_metric) {
            best_metric = m;
            best = cfg;
        }
    }
    return best;
}

Schedule
idealGreedySchedule(EpochDb &db, std::span<const HwConfig> candidates,
                    OptMode mode, const ReconfigCostModel &cost_model,
                    const HwConfig &initial)
{
    SADAPT_ASSERT(!candidates.empty(), "no candidates");
    db.ensure(candidates);
    const bool ee = mode == OptMode::EnergyEfficient;
    const std::size_t num_epochs = db.numEpochs();
    Schedule schedule;
    schedule.configs.reserve(num_epochs);
    HwConfig current = initial;
    for (std::size_t e = 0; e < num_epochs; ++e) {
        HwConfig best = current;
        double best_metric = -1.0;
        for (const HwConfig &cfg : candidates) {
            const EpochRecord &rec = db.epochs(cfg)[e];
            const ReconfigCost rc = cost_model.cost(current, cfg, ee);
            const double m = metricValue(
                mode, rec.flops, rec.seconds + rc.seconds,
                rec.totalEnergy() + rc.energy);
            if (m > best_metric) {
                best_metric = m;
                best = cfg;
            }
        }
        schedule.configs.push_back(best);
        current = best;
    }
    return schedule;
}

namespace {

/** A partial-schedule label for the Pareto oracle DP. */
struct Label
{
    Seconds t;
    Joules e;
    std::int32_t prevCandidate; //!< candidate index at epoch-1
    std::int32_t prevLabel;     //!< label index within that candidate
};

/** Keep only Pareto-nondominated (t, e) labels, bounded in count. */
void
pruneLabels(std::vector<Label> &labels, std::size_t cap)
{
    std::sort(labels.begin(), labels.end(),
              [](const Label &a, const Label &b) {
                  return a.t != b.t ? a.t < b.t : a.e < b.e;
              });
    std::vector<Label> kept;
    double best_e = std::numeric_limits<double>::infinity();
    for (const Label &l : labels) {
        if (l.e < best_e - 1e-18) {
            kept.push_back(l);
            best_e = l.e;
        }
    }
    if (kept.size() > cap) {
        // Thin uniformly along the frontier to bound state.
        std::vector<Label> thinned;
        for (std::size_t i = 0; i < cap; ++i)
            thinned.push_back(
                kept[i * (kept.size() - 1) / (cap - 1)]);
        kept = std::move(thinned);
    }
    labels = std::move(kept);
}

Schedule
oracleEnergy(EpochDb &db, std::span<const HwConfig> candidates,
             const ReconfigCostModel &cost_model,
             const HwConfig &initial)
{
    // Additive objective: plain DP over the epoch x candidate DAG.
    const std::size_t num_epochs = db.numEpochs();
    const std::size_t n = candidates.size();
    std::vector<std::vector<Joules>> cost(
        num_epochs, std::vector<Joules>(n));
    std::vector<std::vector<std::int32_t>> back(
        num_epochs, std::vector<std::int32_t>(n, -1));

    // Memoized pairwise transition energies.
    std::vector<std::vector<Joules>> trans(n, std::vector<Joules>(n));
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            trans[i][j] =
                cost_model.cost(candidates[i], candidates[j], true)
                    .energy;

    for (std::size_t c = 0; c < n; ++c) {
        cost[0][c] =
            cost_model.cost(initial, candidates[c], true).energy +
            db.epochs(candidates[c])[0].totalEnergy();
    }
    for (std::size_t e = 1; e < num_epochs; ++e) {
        for (std::size_t c = 0; c < n; ++c) {
            const Joules epoch_e =
                db.epochs(candidates[c])[e].totalEnergy();
            Joules best = std::numeric_limits<double>::infinity();
            std::int32_t best_prev = -1;
            for (std::size_t p = 0; p < n; ++p) {
                const Joules total =
                    cost[e - 1][p] + trans[p][c] + epoch_e;
                if (total < best) {
                    best = total;
                    best_prev = static_cast<std::int32_t>(p);
                }
            }
            cost[e][c] = best;
            back[e][c] = best_prev;
        }
    }
    std::size_t final_c = 0;
    for (std::size_t c = 1; c < n; ++c)
        if (cost[num_epochs - 1][c] < cost[num_epochs - 1][final_c])
            final_c = c;

    Schedule schedule;
    schedule.configs.assign(num_epochs, initial);
    std::int32_t c = static_cast<std::int32_t>(final_c);
    for (std::size_t e = num_epochs; e-- > 0;) {
        schedule.configs[e] = candidates[c];
        c = back[e][c];
    }
    return schedule;
}

Schedule
oraclePowerPerf(EpochDb &db, std::span<const HwConfig> candidates,
                const ReconfigCostModel &cost_model,
                const HwConfig &initial)
{
    // Minimize T^2 * E: non-additive, so carry a Pareto frontier of
    // (T, E) partial sums per (epoch, candidate) node.
    constexpr std::size_t label_cap = 24;
    const std::size_t num_epochs = db.numEpochs();
    const std::size_t n = candidates.size();

    std::vector<std::vector<ReconfigCost>> trans(
        n, std::vector<ReconfigCost>(n));
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            trans[i][j] = cost_model.cost(candidates[i],
                                          candidates[j], false);

    // labels[e][c] -> Pareto set of partial (T, E).
    std::vector<std::vector<std::vector<Label>>> labels(
        num_epochs, std::vector<std::vector<Label>>(n));

    for (std::size_t c = 0; c < n; ++c) {
        const ReconfigCost rc =
            cost_model.cost(initial, candidates[c], false);
        const EpochRecord &rec = db.epochs(candidates[c])[0];
        labels[0][c].push_back({rec.seconds + rc.seconds,
                                rec.totalEnergy() + rc.energy, -1,
                                -1});
    }
    for (std::size_t e = 1; e < num_epochs; ++e) {
        for (std::size_t c = 0; c < n; ++c) {
            const EpochRecord &rec = db.epochs(candidates[c])[e];
            std::vector<Label> merged;
            for (std::size_t p = 0; p < n; ++p) {
                const ReconfigCost &rc = trans[p][c];
                for (std::size_t li = 0; li < labels[e - 1][p].size();
                     ++li) {
                    const Label &prev = labels[e - 1][p][li];
                    merged.push_back(
                        {prev.t + rc.seconds + rec.seconds,
                         prev.e + rc.energy + rec.totalEnergy(),
                         static_cast<std::int32_t>(p),
                         static_cast<std::int32_t>(li)});
                }
            }
            pruneLabels(merged, label_cap);
            labels[e][c] = std::move(merged);
        }
    }

    // Pick the global minimum of T^2 * E among final labels.
    double best_obj = std::numeric_limits<double>::infinity();
    std::int32_t best_c = -1, best_l = -1;
    for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t li = 0; li < labels[num_epochs - 1][c].size();
             ++li) {
            const Label &l = labels[num_epochs - 1][c][li];
            const double obj = l.t * l.t * l.e;
            if (obj < best_obj) {
                best_obj = obj;
                best_c = static_cast<std::int32_t>(c);
                best_l = static_cast<std::int32_t>(li);
            }
        }
    }
    SADAPT_ASSERT(best_c >= 0, "oracle DP produced no labels");

    Schedule schedule;
    schedule.configs.assign(num_epochs, initial);
    std::int32_t c = best_c, li = best_l;
    for (std::size_t e = num_epochs; e-- > 0;) {
        schedule.configs[e] = candidates[c];
        const Label &l = labels[e][c][li];
        c = l.prevCandidate;
        li = l.prevLabel;
    }
    return schedule;
}

} // namespace

Schedule
oracleSchedule(EpochDb &db, std::span<const HwConfig> candidates,
               OptMode mode, const ReconfigCostModel &cost_model,
               const HwConfig &initial)
{
    SADAPT_ASSERT(!candidates.empty(), "no candidates");
    db.ensure(candidates);
    if (mode == OptMode::EnergyEfficient)
        return oracleEnergy(db, candidates, cost_model, initial);
    return oraclePowerPerf(db, candidates, cost_model, initial);
}

Schedule
sparseAdaptSchedule(EpochDb &db, const Predictor &predictor,
                    const Policy &policy, OptMode mode,
                    const ReconfigCostModel &cost_model,
                    const HwConfig &initial,
                    obs::RunObserver *observer)
{
    SessionContext ctx;
    ctx.predictor = &predictor;
    ctx.policy = &policy;
    ctx.mode = mode;
    ctx.costModel = &cost_model;
    ctx.observer = observer;
    SessionState s = makeSessionState(initial, ctx);
    const std::size_t num_epochs = db.numEpochs();
    s.schedule.configs.reserve(num_epochs);
    for (std::size_t e = 0; e < num_epochs; ++e)
        stepEpoch(s, ctx, db.epochs(s.current)[e]);
    return std::move(s.schedule);
}

RobustAdaptResult
robustSparseAdaptSchedule(EpochDb &db, const Predictor &predictor,
                          const Policy &policy, OptMode mode,
                          const ReconfigCostModel &cost_model,
                          const HwConfig &initial,
                          FaultInjector *faults,
                          const RobustAdaptOptions &opts,
                          obs::RunObserver *observer)
{
    SessionContext ctx;
    ctx.predictor = &predictor;
    ctx.policy = &policy;
    ctx.mode = mode;
    ctx.costModel = &cost_model;
    ctx.faults = faults;
    ctx.robust = true;
    ctx.useGuard = opts.useGuard;
    ctx.observer = observer;
    SessionState s =
        makeSessionState(initial, ctx, opts.guard, opts.watchdog);
    const std::size_t num_epochs = db.numEpochs();
    s.schedule.configs.reserve(num_epochs);
    for (std::size_t e = 0; e < num_epochs; ++e)
        stepEpoch(s, ctx, db.epochs(s.current)[e]);

    RobustAdaptResult out;
    out.schedule = std::move(s.schedule);
    if (faults) {
        out.faults = faults->stats();
        if (observer != nullptr) {
            observer->metrics()
                .counter("sim/faults/samples_dropped")
                .add(out.faults.samplesDropped);
        }
    }
    out.guard = s.guard.stats();
    out.watchdogReverts = s.watchdog.reverts();
    out.watchdogHeldEpochs = s.watchdog.heldEpochs();
    if (observer != nullptr) {
        observer->metrics()
            .counter("adapt/watchdog/reverts")
            .add(out.watchdogReverts);
        observer->metrics()
            .counter("adapt/watchdog/held_epochs")
            .add(out.watchdogHeldEpochs);
    }
    return out;
}

ScheduleEval
evaluateProfileAdapt(EpochDb &db, const Schedule &base,
                     const ReconfigCostModel &cost_model, OptMode mode,
                     const HwConfig &initial,
                     const ProfileAdaptOptions &opts)
{
    SADAPT_ASSERT(base.configs.size() == db.numEpochs(),
                  "schedule length must equal epoch count");
    SADAPT_ASSERT(opts.profilingFraction > 0.0 &&
                  opts.profilingFraction < 1.0,
                  "profiling fraction must be in (0, 1)");
    const bool ee = mode == OptMode::EnergyEfficient;
    const double f = opts.profilingFraction;

    ScheduleEval ev;
    HwConfig current = initial;
    for (std::size_t e = 0; e < base.configs.size(); ++e) {
        const HwConfig &chosen = base.configs[e];
        const bool change = !(chosen == current);
        const bool profile_this_epoch = !opts.ideal || change || e == 0;
        const EpochRecord &rec_sel = db.epochs(chosen)[e];
        if (profile_this_epoch) {
            // Detour: switch to the profiling configuration, run the
            // first fraction of the epoch there (still useful work),
            // then switch to the selected configuration.
            const EpochRecord &rec_prof =
                db.epochs(opts.profilingConfig)[e];
            const ReconfigCost to_prof = cost_model.cost(
                current, opts.profilingConfig, ee);
            const ReconfigCost to_sel = cost_model.cost(
                opts.profilingConfig, chosen, ee);
            ev.reconfigSeconds += to_prof.seconds + to_sel.seconds;
            ev.reconfigEnergy += to_prof.energy + to_sel.energy;
            ev.seconds += to_prof.seconds + to_sel.seconds;
            ev.energy += to_prof.energy + to_sel.energy;
            ev.reconfigCount += 2;
            ev.flops += rec_prof.flops * f + rec_sel.flops * (1 - f);
            ev.seconds +=
                rec_prof.seconds * f + rec_sel.seconds * (1 - f);
            ev.energy += rec_prof.totalEnergy() * f +
                rec_sel.totalEnergy() * (1 - f);
        } else {
            ev.flops += rec_sel.flops;
            ev.seconds += rec_sel.seconds;
            ev.energy += rec_sel.totalEnergy();
        }
        current = chosen;
    }
    return ev;
}

} // namespace sadapt
