/**
 * @file
 * Workload = one device trace plus the system parameters it runs under.
 * Convenience factories build the paper's kernels on suite datasets.
 */

#ifndef SADAPT_ADAPT_WORKLOAD_HH
#define SADAPT_ADAPT_WORKLOAD_HH

#include <string>

#include "sim/transmuter.hh"
#include "sparse/csr.hh"
#include "sparse/sparse_vector.hh"

namespace sadapt {

/** One simulatable workload instance. */
struct Workload
{
    std::string name;
    Trace trace;
    RunParams params;

    /** L1 memory type the trace was compiled for (Section 3.4). */
    MemType l1Type = MemType::Cache;
};

/** Options shared by the workload factories. */
struct WorkloadOptions
{
    SystemShape shape{2, 8};

    /** Off-chip bandwidth (Section 5.2 default). */
    double memBandwidth = 1e9;

    /** L1 memory type (compile-time choice, Section 3.4). */
    MemType l1Type = MemType::Cache;

    /**
     * Epoch size override in FP-ops per GPE; 0 selects the paper's
     * kernel defaults (5k for SpMSpM, 500 for SpMSpV, Section 5.4).
     */
    std::uint64_t epochFpOps = 0;
};

/**
 * OP-SpMSpM workload computing C = A * A^T (the Figure 6 experiment).
 */
Workload makeSpMSpMWorkload(const std::string &name, const CsrMatrix &a,
                            const WorkloadOptions &opts);

/**
 * OP-SpMSpM workload with distinct operands, C = A * B.
 */
Workload makeSpMSpMWorkload(const std::string &name, const CsrMatrix &a,
                            const CsrMatrix &b,
                            const WorkloadOptions &opts);

/**
 * SpMSpV workload y = A * x (Figures 5 and 7). If x is empty, a
 * uniform-random 50%-dense vector is generated (Section 6.1.1).
 */
Workload makeSpMSpVWorkload(const std::string &name, const CsrMatrix &a,
                            const SparseVector &x,
                            const WorkloadOptions &opts);

} // namespace sadapt

#endif // SADAPT_ADAPT_WORKLOAD_HH
