/**
 * @file
 * Degraded-mode defenses for the SparseAdapt control loop.
 *
 * TelemetryGuard validates each incoming PerfCounterSample against the
 * physical invariants of the counters (finite, non-negative, rates in
 * [0, 1], throughputs below issue-width caps — counterBounds()) and a
 * rolling per-counter median/MAD outlier filter, classifying it as
 *
 *  - OK:      passes every check; used as-is and admitted to history.
 *  - SUSPECT: a few counters violate bounds or are statistical
 *             outliers; those counters are clamped/imputed from the
 *             rolling median and the repaired sample is used.
 *  - BAD:     too much of the sample is implausible; it is discarded
 *             and the last-known-good sample is reused instead.
 *
 * Watchdog closes the loop on the actuation side: it tracks realized
 * efficiency per epoch (host-side measurement, independent of the
 * counter telemetry), holds the current configuration when telemetry is
 * missing, and after K consecutive degraded epochs reverts to the safe
 * baseline configuration, re-entering adaptation only after a
 * hysteresis hold.
 */

#ifndef SADAPT_ADAPT_GUARD_HH
#define SADAPT_ADAPT_GUARD_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "obs/observer.hh"
#include "sim/counters.hh"

namespace sadapt {

/** Classification of one telemetry sample. */
enum class SampleVerdict : std::uint8_t
{
    Ok,
    Suspect,
    Bad,
};

/** Human-readable verdict name. */
std::string sampleVerdictName(SampleVerdict v);

/** Tuning knobs of the telemetry guard. */
struct GuardOptions
{
    /** Rolling history window per counter, epochs. */
    std::size_t historyWindow = 8;

    /** Outlier threshold: |x - median| > k * MAD flags a counter. */
    double madThreshold = 8.0;

    /**
     * Absolute deviation floor, as a fraction of the counter's
     * physical range: deviations below it are never outliers, so
     * near-constant counters (tiny MAD) don't false-positive on
     * legitimate phase changes.
     */
    double absoluteFloor = 0.10;

    /** Epochs of history required before the MAD filter engages. */
    std::size_t minHistory = 4;

    /** More flagged counters than this fraction makes the sample BAD. */
    double badFraction = 0.25;
};

/** Guard outcome counters, surfaced in run summary tables. */
struct GuardStats
{
    std::uint64_t samplesOk = 0;
    std::uint64_t samplesClamped = 0;  //!< SUSPECT: repaired in place
    std::uint64_t samplesDiscarded = 0; //!< BAD: last-known-good reused
    std::uint64_t samplesMissing = 0;   //!< no telemetry arrived at all
};

/** Outcome of inspecting one sample. */
struct GuardReport
{
    SampleVerdict verdict = SampleVerdict::Ok;

    /** Indices (toVector() order) of counters that were repaired. */
    std::vector<std::size_t> flagged;
};

/**
 * Stateful per-run sample validator. Feed each epoch's received sample
 * through inspect(); when no sample arrived, call recordMissing().
 */
class TelemetryGuard
{
  public:
    explicit TelemetryGuard(const GuardOptions &opts = GuardOptions{});

    /**
     * Validate and, for SUSPECT samples, repair `sample` in place.
     * BAD samples are left untouched; callers should fall back to
     * lastKnownGood().
     */
    GuardReport inspect(PerfCounterSample &sample);

    /** Account for an epoch whose telemetry never arrived. */
    void recordMissing();

    /** The most recent OK/repaired sample, if any. */
    const std::optional<PerfCounterSample> &lastKnownGood() const
    {
        return lastGoodV;
    }

    const GuardStats &stats() const { return statsV; }
    const GuardOptions &options() const { return optsV; }

    void reset();

  private:
    GuardOptions optsV;
    GuardStats statsV;
    std::vector<std::deque<double>> historyV; //!< per counter
    std::optional<PerfCounterSample> lastGoodV;

    void admit(const std::vector<double> &values);
};

/** Tuning knobs of the controller watchdog. */
struct WatchdogOptions
{
    /** Consecutive degraded epochs before reverting to baseline. */
    std::size_t degradedLimit = 4;

    /**
     * An epoch is degraded when its realized metric falls below this
     * fraction of the rolling reference.
     */
    double efficiencyFloor = 0.5;

    /** Epochs to hold the baseline before re-entering adaptation. */
    std::size_t holdEpochs = 4;

    /** EWMA weight of the newest epoch in the rolling reference. */
    double referenceAlpha = 0.25;
};

/** Watchdog operating state. */
enum class WatchdogState : std::uint8_t
{
    Normal,   //!< adaptation active
    Reverted, //!< holding the baseline configuration
};

/** Human-readable watchdog state name. */
std::string watchdogStateName(WatchdogState s);

/**
 * Realized-efficiency watchdog. Call observe() once per epoch with the
 * metric the epoch actually achieved; the decision says whether the
 * controller may adapt, must hold, or must revert to baseline.
 */
class Watchdog
{
  public:
    explicit Watchdog(const WatchdogOptions &opts = WatchdogOptions{});

    struct Decision
    {
        /** Keep the current configuration; skip prediction entirely. */
        bool hold = false;

        /** Switch to (or stay at) the baseline configuration. */
        bool revert = false;
    };

    /**
     * @param realized_metric the epoch's achieved objective value.
     * @param telemetry_ok false when the epoch's sample was missing or
     *        discarded; the controller then holds its configuration.
     */
    Decision observe(double realized_metric, bool telemetry_ok);

    /**
     * Journal every state transition (exactly one "watchdog" event per
     * Normal <-> Reverted edge) through an observer. Pure observer:
     * attaching one never changes a decision. Null detaches.
     */
    void attachObserver(obs::RunObserver *observer)
    {
        obsV = observer;
    }

    WatchdogState state() const { return stateV; }
    std::uint64_t reverts() const { return revertsV; }
    std::uint64_t heldEpochs() const { return heldV; }
    double reference() const { return referenceV; }

    void reset();

  private:
    WatchdogOptions optsV;
    obs::RunObserver *obsV = nullptr;
    WatchdogState stateV = WatchdogState::Normal;

    /** Move to `next`, emitting the transition event if journaled. */
    void transition(WatchdogState next);
    double referenceV = 0.0;
    bool haveReference = false;
    std::size_t degradedStreak = 0;
    std::size_t holdRemaining = 0;
    std::uint64_t revertsV = 0;
    std::uint64_t heldV = 0;
};

} // namespace sadapt

#endif // SADAPT_ADAPT_GUARD_HH
