#include "adapt/guard.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sadapt {

std::string
sampleVerdictName(SampleVerdict v)
{
    switch (v) {
      case SampleVerdict::Ok: return "ok";
      case SampleVerdict::Suspect: return "suspect";
      case SampleVerdict::Bad: return "bad";
    }
    panic("bad SampleVerdict");
}

TelemetryGuard::TelemetryGuard(const GuardOptions &opts)
    : optsV(opts), historyV(PerfCounterSample::count())
{
    SADAPT_ASSERT(optsV.historyWindow >= 2, "history window too small");
    SADAPT_ASSERT(optsV.madThreshold > 0.0 && optsV.badFraction > 0.0,
                  "guard thresholds must be positive");
}

void
TelemetryGuard::reset()
{
    statsV = GuardStats{};
    for (auto &h : historyV)
        h.clear();
    lastGoodV.reset();
}

namespace {

double
medianOf(std::vector<double> v)
{
    SADAPT_ASSERT(!v.empty(), "median of empty history");
    const std::size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + mid, v.end());
    double m = v[mid];
    if (v.size() % 2 == 0) {
        std::nth_element(v.begin(), v.begin() + mid - 1,
                         v.begin() + mid);
        m = 0.5 * (m + v[mid - 1]);
    }
    return m;
}

} // namespace

void
TelemetryGuard::admit(const std::vector<double> &values)
{
    for (std::size_t i = 0; i < values.size(); ++i) {
        historyV[i].push_back(values[i]);
        if (historyV[i].size() > optsV.historyWindow)
            historyV[i].pop_front();
    }
}

GuardReport
TelemetryGuard::inspect(PerfCounterSample &sample)
{
    const auto &bounds = counterBounds();
    std::vector<double> v = sample.toVector();
    std::vector<double> repaired = v;
    // What enters the rolling history. Physically impossible values
    // are replaced by their repair; in-bounds statistical outliers are
    // admitted raw, so a *sustained* level shift (a legitimate phase
    // change) moves the median within ~window/2 epochs and stops being
    // flagged, while an isolated spike is imputed away.
    std::vector<double> admitted = v;
    GuardReport report;

    for (std::size_t i = 0; i < v.size(); ++i) {
        std::vector<double> hist(historyV[i].begin(),
                                 historyV[i].end());
        const bool have_hist = hist.size() >= optsV.minHistory;
        const double med = hist.empty() ? 0.0 : medianOf(hist);
        double limit = 0.0;
        if (have_hist) {
            std::vector<double> dev(hist.size());
            for (std::size_t j = 0; j < hist.size(); ++j)
                dev[j] = std::abs(hist[j] - med);
            const double mad = medianOf(std::move(dev));
            const double span = bounds[i].hi - bounds[i].lo;
            limit = std::max(optsV.madThreshold * mad,
                             optsV.absoluteFloor * span);
        }

        // Physical invariants: finite, inside the counter's hard range.
        if (!std::isfinite(v[i]) || !bounds[i].contains(v[i])) {
            report.flagged.push_back(i);
            double rep = std::isfinite(v[i])
                ? std::clamp(v[i], bounds[i].lo, bounds[i].hi)
                : (hist.empty() ? bounds[i].lo : med);
            // A wild spike clamps to the bound but carries no real
            // information; when the clamped value is itself a
            // statistical outlier, impute from history instead.
            if (have_hist && std::abs(rep - med) > limit)
                rep = med;
            repaired[i] = rep;
            admitted[i] = rep;
            continue;
        }

        // Rolling median/MAD outlier filter.
        if (have_hist && std::abs(v[i] - med) > limit) {
            report.flagged.push_back(i);
            repaired[i] = med; // impute from history
        }
    }

    if (report.flagged.empty()) {
        report.verdict = SampleVerdict::Ok;
        ++statsV.samplesOk;
        admit(v);
        lastGoodV = sample;
        return report;
    }

    const double frac = static_cast<double>(report.flagged.size()) /
        static_cast<double>(v.size());
    if (frac > optsV.badFraction) {
        // Too much of the sample is implausible to trust any of it.
        report.verdict = SampleVerdict::Bad;
        ++statsV.samplesDiscarded;
        return report;
    }

    report.verdict = SampleVerdict::Suspect;
    ++statsV.samplesClamped;
    sample = counterSampleFromVector(repaired);
    admit(admitted);
    lastGoodV = sample;
    return report;
}

void
TelemetryGuard::recordMissing()
{
    ++statsV.samplesMissing;
}

std::string
watchdogStateName(WatchdogState s)
{
    switch (s) {
      case WatchdogState::Normal: return "normal";
      case WatchdogState::Reverted: return "reverted";
    }
    panic("bad WatchdogState");
}

Watchdog::Watchdog(const WatchdogOptions &opts)
    : optsV(opts)
{
    SADAPT_ASSERT(optsV.degradedLimit >= 1, "degraded limit too small");
    SADAPT_ASSERT(optsV.efficiencyFloor > 0.0 &&
                      optsV.efficiencyFloor < 1.0,
                  "efficiency floor must be in (0, 1)");
    SADAPT_ASSERT(optsV.referenceAlpha > 0.0 &&
                      optsV.referenceAlpha <= 1.0,
                  "reference alpha must be in (0, 1]");
}

void
Watchdog::reset()
{
    stateV = WatchdogState::Normal;
    referenceV = 0.0;
    haveReference = false;
    degradedStreak = 0;
    holdRemaining = 0;
    revertsV = 0;
    heldV = 0;
}

void
Watchdog::transition(WatchdogState next)
{
    const WatchdogState from = stateV;
    stateV = next;
    if (obsV == nullptr)
        return;
    obsV->emit("adapt/watchdog", "watchdog",
               {{"from", watchdogStateName(from)},
                {"to", watchdogStateName(next)},
                {"reverts", static_cast<std::int64_t>(revertsV)},
                {"held_epochs", static_cast<std::int64_t>(heldV)}});
}

Watchdog::Decision
Watchdog::observe(double realized_metric, bool telemetry_ok)
{
    if (stateV == WatchdogState::Reverted) {
        ++heldV;
        if (holdRemaining > 0)
            --holdRemaining;
        if (holdRemaining == 0) {
            // Hysteresis expired: re-enter adaptation with a fresh
            // reference seeded by the baseline's realized efficiency.
            referenceV = realized_metric;
            haveReference = realized_metric > 0.0;
            degradedStreak = 0;
            transition(WatchdogState::Normal);
        }
        return {false, true};
    }

    const bool degraded = haveReference &&
        realized_metric < optsV.efficiencyFloor * referenceV;
    if (degraded) {
        ++degradedStreak;
    } else {
        degradedStreak = 0;
        // Only healthy epochs move the reference, so a collapsing
        // configuration can't drag the bar down with it.
        if (realized_metric > 0.0) {
            referenceV = haveReference
                ? optsV.referenceAlpha * realized_metric +
                    (1.0 - optsV.referenceAlpha) * referenceV
                : realized_metric;
            haveReference = true;
        }
    }

    if (degradedStreak >= optsV.degradedLimit) {
        holdRemaining = optsV.holdEpochs;
        degradedStreak = 0;
        ++revertsV;
        ++heldV;
        transition(WatchdogState::Reverted);
        return {false, true};
    }

    if (!telemetry_ok) {
        // No trustworthy counters this epoch: hold the configuration
        // rather than predict from garbage.
        ++heldV;
        return {true, false};
    }
    return {false, false};
}

} // namespace sadapt
