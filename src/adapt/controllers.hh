/**
 * @file
 * Control schemes compared in the evaluation (Section 5.3):
 *
 *  - Ideal Static: best single configuration from a sampled set,
 *    chosen with full knowledge of the program and dataset.
 *  - Ideal Greedy: per-epoch locally optimal dynamic reconfiguration.
 *  - Oracle: globally optimal configuration sequence over the sampled
 *    set, solved as a shortest-path / dynamic program over the
 *    epoch x configuration DAG (Appendix A.7 step 7).
 *  - ProfileAdapt (Dubach et al. 2010): the prior scheme, which must
 *    detour through a profiling configuration (Figure 3b); naive
 *    (every epoch) and ideal (only on phase/config changes) variants.
 *  - SparseAdapt: the paper's contribution — predictor + hysteresis
 *    policy driven by per-epoch telemetry.
 */

#ifndef SADAPT_ADAPT_CONTROLLERS_HH
#define SADAPT_ADAPT_CONTROLLERS_HH

#include <span>

#include "adapt/epoch_db.hh"
#include "adapt/guard.hh"
#include "adapt/policy.hh"
#include "adapt/predictor.hh"
#include "obs/observer.hh"
#include "sim/faults.hh"

namespace sadapt {

/**
 * Ideal Static: the candidate whose whole-program static metric is
 * highest (hypothetical perfect compile-time predictor).
 */
HwConfig idealStaticConfig(EpochDb &db,
                           std::span<const HwConfig> candidates,
                           OptMode mode);

/**
 * Ideal Greedy: at each epoch boundary pick the candidate that
 * maximizes the *next epoch's* metric including the transition
 * penalty from the current configuration.
 */
Schedule idealGreedySchedule(EpochDb &db,
                             std::span<const HwConfig> candidates,
                             OptMode mode,
                             const ReconfigCostModel &cost_model,
                             const HwConfig &initial);

/**
 * Oracle: globally optimal sequence over the candidate set.
 * Energy-Efficient mode minimizes total energy (additive -> exact
 * shortest path). Power-Performance maximizes F^3/(T^2 E) with fixed
 * F, i.e. minimizes T^2 E, which is non-additive: a label-correcting
 * Pareto dynamic program over (T, E) pairs is used (the paper's
 * "modified Dijkstra"), pruned to a bounded frontier.
 */
Schedule oracleSchedule(EpochDb &db,
                        std::span<const HwConfig> candidates,
                        OptMode mode,
                        const ReconfigCostModel &cost_model,
                        const HwConfig &initial);

/**
 * SparseAdapt: stitched execution where, at each epoch end, the
 * predictor reads the just-finished epoch's counters (under the
 * configuration that actually ran it) and the policy filters the
 * predicted switch (Appendix A.7 step 5).
 *
 * `observer` (optional) receives the decision audit trail — epoch,
 * prediction, policy and reconfig events plus adapt/ metrics — and is
 * a pure observer: the returned schedule is bit-identical with or
 * without one attached.
 */
Schedule sparseAdaptSchedule(EpochDb &db, const Predictor &predictor,
                             const Policy &policy, OptMode mode,
                             const ReconfigCostModel &cost_model,
                             const HwConfig &initial,
                             obs::RunObserver *observer = nullptr);

/** Degraded-mode controls of the robust SparseAdapt loop. */
struct RobustAdaptOptions
{
    GuardOptions guard;
    WatchdogOptions watchdog;

    /**
     * Enable the TelemetryGuard + Watchdog defenses. When false the
     * controller is the naive unguarded loop: corrupted samples feed
     * the predictor verbatim and a missing sample reads as all-zero
     * counters (a stuck telemetry register).
     */
    bool useGuard = true;
};

/** Outcome of one robust SparseAdapt run. */
struct RobustAdaptResult
{
    /** Configuration actually in effect each epoch (post fault). */
    Schedule schedule;

    FaultStats faults;
    GuardStats guard;
    std::uint64_t watchdogReverts = 0;
    std::uint64_t watchdogHeldEpochs = 0;
};

/**
 * SparseAdapt with a faultable telemetry/command path and the
 * degraded-mode defenses of adapt/guard.hh. With `faults == nullptr`
 * and defenses enabled on clean telemetry, behaves like
 * sparseAdaptSchedule() (the guard passes clean samples through).
 *
 * Per epoch: the epoch's counters travel through the fault injector,
 * then the guard classifies/repairs them; the watchdog observes the
 * epoch's realized efficiency and can hold the configuration (missing
 * telemetry) or revert to baselineConfig() after K consecutive
 * degraded epochs; finally the (possibly faulty) command path decides
 * the configuration that actually takes effect.
 */
RobustAdaptResult robustSparseAdaptSchedule(
    EpochDb &db, const Predictor &predictor, const Policy &policy,
    OptMode mode, const ReconfigCostModel &cost_model,
    const HwConfig &initial, FaultInjector *faults,
    const RobustAdaptOptions &opts = RobustAdaptOptions{},
    obs::RunObserver *observer = nullptr);

/** Options of the ProfileAdapt emulation (Appendix A.7 step 8). */
struct ProfileAdaptOptions
{
    /** The profiling configuration (each parameter maximal). */
    HwConfig profilingConfig;

    /**
     * Fraction of an epoch spent executing in the profiling
     * configuration before switching to the selected one.
     */
    double profilingFraction = 0.25;

    /**
     * Ideal variant: detour through the profiling configuration only
     * on epochs where the selected configuration changes (assumes an
     * external phase detector — unrealistic for implicit phases).
     */
    bool ideal = false;
};

/**
 * Evaluate ProfileAdapt applied to a base (Ideal Greedy) schedule:
 * reconfiguration into and out of the profiling configuration is
 * charged, and the profiling fraction of the epoch runs under the
 * profiling configuration (still performing useful work).
 */
ScheduleEval evaluateProfileAdapt(EpochDb &db, const Schedule &base,
                                  const ReconfigCostModel &cost_model,
                                  OptMode mode, const HwConfig &initial,
                                  const ProfileAdaptOptions &opts);

} // namespace sadapt

#endif // SADAPT_ADAPT_CONTROLLERS_HH
