/**
 * @file
 * History-based prediction — the Section 7 ("Bridging the Gap with
 * Oracle") extension implemented.
 *
 * The base SparseAdapt predictor sees only the last epoch's telemetry.
 * This extension augments the feature vector with the *trend*: the
 * difference between the last two epochs' counter samples, so the
 * model can distinguish "entering a phase" from "inside a phase" —
 * borrowing the history idea from branch prediction, as the paper
 * suggests. Training examples are harvested from real execution
 * sequences rather than steady-state phases, labelled with the
 * locally-best configuration of the *next* epoch.
 */

#ifndef SADAPT_ADAPT_HISTORY_HH
#define SADAPT_ADAPT_HISTORY_HH

#include "adapt/policy.hh"
#include "adapt/trainer.hh"
#include "ml/decision_tree.hh"

namespace sadapt {

/** Number of history input features (params + 2x counters). */
std::size_t numHistoryFeatures();

/** History feature names, in buildHistoryFeatures() order. */
const std::vector<std::string> &historyFeatureNames();

/**
 * Build the history feature vector: configuration parameters, the
 * current epoch's counters, and the counter deltas vs the previous
 * epoch.
 */
std::vector<double> buildHistoryFeatures(const HwConfig &cfg,
                                         const PerfCounterSample &cur,
                                         const PerfCounterSample &prev);

/**
 * Harvest sequence training examples from one workload: for each
 * epoch t >= 1 and each sampled configuration c, the features are
 * (c, counters_t(c), counters_t(c) - counters_{t-1}(c)) and the label
 * is the candidate configuration with the best epoch-(t+1) metric.
 *
 * @param db epoch database of a training workload.
 * @param mode optimization mode for the labels.
 * @param num_samples configurations sampled as feature sources and
 *        label candidates.
 */
TrainingSet buildHistoryTrainingSet(EpochDb &db, OptMode mode,
                                    std::size_t num_samples, Rng &rng);

/** Append another training set's rows (same feature layout). */
void mergeTrainingSets(TrainingSet &into, const TrainingSet &from);

/**
 * Per-parameter decision-tree ensemble over history features.
 */
class HistoryPredictor
{
  public:
    /** Fit all trees with one set of hyperparameters. */
    void train(const TrainingSet &set, const TreeParams &params);

    /** Predict the next-epoch configuration from two epochs of
     * telemetry. */
    HwConfig predict(const HwConfig &current,
                     const PerfCounterSample &cur,
                     const PerfCounterSample &prev) const;

    bool trained() const;

    const DecisionTreeClassifier &tree(Param p) const;

  private:
    std::array<DecisionTreeClassifier, numParams> trees;
};

/**
 * SparseAdapt stitched schedule driven by the history predictor: the
 * decision at the end of epoch e uses the telemetry of epochs e and
 * e-1 under the configurations that actually ran them.
 */
Schedule sparseAdaptHistorySchedule(EpochDb &db,
                                    const HistoryPredictor &predictor,
                                    const Policy &policy, OptMode mode,
                                    const ReconfigCostModel &cost_model,
                                    const HwConfig &initial);

} // namespace sadapt

#endif // SADAPT_ADAPT_HISTORY_HH
