#include "adapt/telemetry.hh"

#include "common/logging.hh"

namespace sadapt {

std::string
featureGroupName(FeatureGroup g)
{
    switch (g) {
      case FeatureGroup::ConfigParams: return "Config Params";
      case FeatureGroup::L1RDCache: return "L1 R-DCache";
      case FeatureGroup::L2RDCache: return "L2 R-DCache";
      case FeatureGroup::RXBar: return "R-XBar";
      case FeatureGroup::Cores: return "LCP/GPE Cores";
      case FeatureGroup::MemoryController: return "Memory Ctrl";
    }
    panic("bad FeatureGroup");
}

std::size_t
numTelemetryFeatures()
{
    return numParams + PerfCounterSample::count();
}

const std::vector<std::string> &
telemetryFeatureNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> n;
        for (Param p : allParams())
            n.push_back("cfg_" + paramName(p));
        for (const auto &c : PerfCounterSample::names())
            n.push_back(c);
        return n;
    }();
    return names;
}

const std::vector<FeatureGroup> &
telemetryFeatureGroups()
{
    static const std::vector<FeatureGroup> groups = [] {
        std::vector<FeatureGroup> g(numParams,
                                    FeatureGroup::ConfigParams);
        for (CounterGroup cg : PerfCounterSample::groups()) {
            switch (cg) {
              case CounterGroup::L1RDCache:
                g.push_back(FeatureGroup::L1RDCache);
                break;
              case CounterGroup::L2RDCache:
                g.push_back(FeatureGroup::L2RDCache);
                break;
              case CounterGroup::RXBar:
                g.push_back(FeatureGroup::RXBar);
                break;
              case CounterGroup::Cores:
                g.push_back(FeatureGroup::Cores);
                break;
              case CounterGroup::MemoryController:
                g.push_back(FeatureGroup::MemoryController);
                break;
            }
        }
        return g;
    }();
    return groups;
}

std::vector<double>
buildFeatures(const HwConfig &cfg, const PerfCounterSample &counters)
{
    std::vector<double> f;
    f.reserve(numTelemetryFeatures());
    for (Param p : allParams()) {
        const double card = paramCardinality(p);
        f.push_back(paramValue(cfg, p) / (card - 1.0));
    }
    for (double c : counters.toVector())
        f.push_back(c);
    return f;
}

} // namespace sadapt
