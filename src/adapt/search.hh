/**
 * @file
 * The three-step "best configuration" search of Figure 4:
 * 1) random sampling of K configurations, 2) evaluation of the
 * hyper-sphere of neighbors around the best sample, 3) an independent
 * sweep along each configuration dimension (exploiting the conditional
 * independence assumption of Section 4.1).
 */

#ifndef SADAPT_ADAPT_SEARCH_HH
#define SADAPT_ADAPT_SEARCH_HH

#include "adapt/epoch_db.hh"

namespace sadapt {

class Rng;

/** Knobs of the Figure 4 search. */
struct SearchParams
{
    /** K: random configurations sampled in step 1. */
    std::size_t randomSamples = 16;

    /**
     * Cap on neighbor evaluations in step 2 (the full hyper-sphere has
     * up to 323 points; the paper runs this offline, we subsample).
     */
    std::size_t neighborCap = 48;

    /** Skip steps 2/3 (for quick searches). */
    bool neighborEval = true;
    bool dimensionSweep = true;
};

/** Outcome of one best-config search for one program phase. */
struct SearchOutcome
{
    HwConfig bestRandom; //!< Y_rand: best of the K samples
    HwConfig bestNeighbor; //!< Y_neigh after step 2
    HwConfig best;       //!< Y_sweep after the dimension sweep

    /** The K random samples of step 1 (training-example sources). */
    std::vector<HwConfig> sampled;
};

/**
 * Metric of running the whole workload statically under cfg,
 * restricted to the epochs of one phase (phase < 0 means all epochs).
 */
double staticPhaseMetric(EpochDb &db, const HwConfig &cfg, OptMode mode,
                         int phase);

/**
 * Run the Figure 4 search for one phase of a workload.
 *
 * @param db epoch database of the (training) workload.
 * @param phase explicit phase id to optimize for, or -1 for the whole
 *        program.
 */
SearchOutcome findBestConfig(EpochDb &db, OptMode mode, int phase,
                             const SearchParams &params, Rng &rng);

} // namespace sadapt

#endif // SADAPT_ADAPT_SEARCH_HH
