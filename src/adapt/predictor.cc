#include "adapt/predictor.hh"

#include <istream>
#include <ostream>

#include "adapt/telemetry.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace sadapt {

Predictor::TrainReport
Predictor::train(const TrainingSet &set, Rng &rng)
{
    TrainReport report;
    for (std::size_t i = 0; i < numParams; ++i) {
        auto result = gridSearchTree(set.perParam[i], 3, rng);
        report.chosen[i] = result.best;
        report.cvAccuracy[i] = result.bestAccuracy;
        trees[i].fit(set.perParam[i], result.best);
    }
    return report;
}

void
Predictor::trainFixed(const TrainingSet &set, const TreeParams &params)
{
    for (std::size_t i = 0; i < numParams; ++i)
        trees[i].fit(set.perParam[i], params);
}

void
Predictor::trainPerParam(const TrainingSet &set,
                         const std::array<TreeParams, numParams> &params)
{
    for (std::size_t i = 0; i < numParams; ++i)
        trees[i].fit(set.perParam[i], params[i]);
}

HwConfig
Predictor::predict(const HwConfig &current,
                   const PerfCounterSample &counters) const
{
    SADAPT_ASSERT(trained(), "predict on an untrained predictor");
    const std::vector<double> features =
        buildFeatures(current, counters);
    HwConfig out = current;
    for (std::size_t i = 0; i < numParams; ++i) {
        const Param p = allParams()[i];
        const std::uint32_t v = std::min(
            trees[i].predict(features), paramCardinality(p) - 1);
        out = withParam(out, p, v);
    }
    return out;
}

const DecisionTreeClassifier &
Predictor::tree(Param p) const
{
    return trees[static_cast<std::size_t>(p)];
}

std::vector<double>
Predictor::featureImportance(Param p) const
{
    return tree(p).featureImportance();
}

bool
Predictor::trained() const
{
    for (const auto &t : trees)
        if (!t.trained())
            return false;
    return true;
}

void
Predictor::save(std::ostream &out) const
{
    out << "predictor " << numParams << '\n';
    for (const auto &t : trees)
        t.save(out);
}

Predictor
Predictor::load(std::istream &in)
{
    std::string magic;
    std::size_t n = 0;
    if (!(in >> magic >> n) || magic != "predictor" || n != numParams)
        fatal("predictor: malformed header");
    Predictor p;
    for (auto &t : p.trees)
        t = DecisionTreeClassifier::load(in);
    return p;
}

} // namespace sadapt
