#include "adapt/runner.hh"

#include <unordered_set>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/threading.hh"

namespace sadapt {

Comparison::Comparison(const Workload &workload,
                       const Predictor *predictor,
                       const ComparisonOptions &options)
    : wl(workload), pred(predictor), opts(options), dbV(workload),
      cost(workload.params.shape, workload.params.memBandwidth,
           workload.params.energy),
      initial(baselineConfig(workload.l1Type))
{
    if (opts.observer != nullptr)
        dbV.attachMetrics(&opts.observer->metrics());
    if (opts.store != nullptr)
        dbV.attachStore(opts.store);
    dbV.setJobs(opts.jobs > 0 ? opts.jobs : defaultJobs());
}

const std::vector<HwConfig> &
Comparison::candidates()
{
    if (candidatesV.empty()) {
        Rng rng(opts.seed);
        ConfigSpace space(wl.l1Type);
        candidatesV = space.sample(opts.oracleSamples, rng);
        // Always include the standard static systems so the ideal
        // schemes are never worse than them.
        std::unordered_set<std::uint32_t> codes;
        for (const auto &c : candidatesV)
            codes.insert(c.encode());
        for (const HwConfig &std_cfg :
             {baselineConfig(wl.l1Type), bestAvgConfig(wl.l1Type),
              maxConfig(wl.l1Type)}) {
            if (codes.insert(std_cfg.encode()).second)
                candidatesV.push_back(std_cfg);
        }
    }
    return candidatesV;
}

ScheduleEval
Comparison::staticEval(const HwConfig &cfg)
{
    return evaluateSchedule(
        dbV, Schedule::uniform(cfg, dbV.numEpochs()), cost, opts.mode,
        cfg);
}

ScheduleEval
Comparison::baseline()
{
    return staticEval(baselineConfig(wl.l1Type));
}

ScheduleEval
Comparison::bestAvg()
{
    return staticEval(bestAvgConfig(wl.l1Type));
}

ScheduleEval
Comparison::maxCfg()
{
    return staticEval(maxConfig(wl.l1Type));
}

ScheduleEval
Comparison::idealStatic()
{
    const HwConfig cfg =
        idealStaticConfig(dbV, candidates(), opts.mode);
    return staticEval(cfg);
}

const Schedule &
Comparison::greedySchedule()
{
    if (!greedyCache) {
        greedyCache = idealGreedySchedule(dbV, candidates(), opts.mode,
                                          cost, initial);
    }
    return *greedyCache;
}

ScheduleEval
Comparison::idealGreedy()
{
    return evaluateSchedule(dbV, greedySchedule(), cost, opts.mode,
                            initial);
}

ScheduleEval
Comparison::oracle()
{
    const Schedule s = oracleSchedule(dbV, candidates(), opts.mode,
                                      cost, initial);
    return evaluateSchedule(dbV, s, cost, opts.mode, initial);
}

ScheduleEval
Comparison::profileAdapt(bool ideal)
{
    ProfileAdaptOptions pa;
    pa.profilingConfig = maxConfig(wl.l1Type);
    pa.profilingFraction = opts.profilingFraction;
    pa.ideal = ideal;
    return evaluateProfileAdapt(dbV, greedySchedule(), cost, opts.mode,
                                initial, pa);
}

const Schedule &
Comparison::sparseAdaptSchedule()
{
    SADAPT_ASSERT(pred != nullptr && pred->trained(),
                  "sparseAdapt() needs a trained predictor");
    if (!sparseAdaptCache) {
        sparseAdaptCache = ::sadapt::sparseAdaptSchedule(
            dbV, *pred, opts.policy, opts.mode, cost, initial,
            opts.observer);
    }
    return *sparseAdaptCache;
}

ScheduleEval
Comparison::sparseAdapt()
{
    return evaluateSchedule(dbV, sparseAdaptSchedule(), cost,
                            opts.mode, initial);
}

Comparison::RobustEval
Comparison::sparseAdaptRobust(const FaultSpec &spec, bool guarded,
                              const RobustAdaptOptions &robust_opts)
{
    SADAPT_ASSERT(pred != nullptr && pred->trained(),
                  "sparseAdaptRobust() needs a trained predictor");
    std::optional<FaultInjector> injector;
    if (spec.enabled())
        injector.emplace(spec);
    RobustAdaptOptions ro = robust_opts;
    ro.useGuard = guarded;
    RobustAdaptResult res = robustSparseAdaptSchedule(
        dbV, *pred, opts.policy, opts.mode, cost, initial,
        injector ? &*injector : nullptr, ro, opts.observer);

    RobustEval out;
    out.eval = evaluateSchedule(dbV, res.schedule, cost, opts.mode,
                                initial);
    out.faults = res.faults;
    out.guard = res.guard;
    out.watchdogReverts = res.watchdogReverts;
    out.watchdogHeldEpochs = res.watchdogHeldEpochs;
    return out;
}

} // namespace sadapt
