#include "adapt/policy.hh"

#include "common/logging.hh"

namespace sadapt {

std::string
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Conservative: return "conservative";
      case PolicyKind::Aggressive: return "aggressive";
      case PolicyKind::Hybrid: return "hybrid";
    }
    panic("bad PolicyKind");
}

Policy::Policy(PolicyKind kind, double hybrid_tolerance)
    : kindV(kind), toleranceV(hybrid_tolerance)
{
    SADAPT_ASSERT(hybrid_tolerance > 0.0, "tolerance must be positive");
}

HwConfig
Policy::apply(const HwConfig &current, const HwConfig &predicted,
              Seconds last_epoch_seconds,
              const ReconfigCostModel &cost_model,
              bool energy_efficient_mode) const
{
    if (kindV == PolicyKind::Aggressive)
        return predicted;

    HwConfig out = current;
    for (Param p : allParams()) {
        const std::uint32_t want = paramValue(predicted, p);
        if (want == paramValue(current, p))
            continue;
        const HwConfig single = withParam(current, p, want);
        const ReconfigCost rc =
            cost_model.cost(current, single, energy_efficient_mode);
        bool accept = false;
        switch (kindV) {
          case PolicyKind::Conservative:
            // Never pay a flush: super-fine changes only.
            accept = !rc.flushL1 && !rc.flushL2;
            break;
          case PolicyKind::Hybrid:
            // Penalizes bursts of reconfiguration after short epochs
            // but allows occasional expensive switches after long ones.
            accept = rc.seconds <= toleranceV * last_epoch_seconds;
            break;
          case PolicyKind::Aggressive:
            accept = true;
            break;
        }
        if (accept)
            out = withParam(out, p, want);
    }
    return out;
}

} // namespace sadapt
