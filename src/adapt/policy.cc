#include "adapt/policy.hh"

#include "common/logging.hh"

namespace sadapt {

std::string
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Conservative: return "conservative";
      case PolicyKind::Aggressive: return "aggressive";
      case PolicyKind::Hybrid: return "hybrid";
    }
    panic("bad PolicyKind");
}

Policy::Policy(PolicyKind kind, double hybrid_tolerance)
    : kindV(kind), toleranceV(hybrid_tolerance)
{
    SADAPT_ASSERT(hybrid_tolerance > 0.0, "tolerance must be positive");
}

HwConfig
Policy::apply(const HwConfig &current, const HwConfig &predicted,
              Seconds last_epoch_seconds,
              const ReconfigCostModel &cost_model,
              bool energy_efficient_mode) const
{
    return applyDetailed(current, predicted, last_epoch_seconds,
                         cost_model, energy_efficient_mode)
        .config;
}

PolicyOutcome
Policy::applyDetailed(const HwConfig &current, const HwConfig &predicted,
                      Seconds last_epoch_seconds,
                      const ReconfigCostModel &cost_model,
                      bool energy_efficient_mode) const
{
    PolicyOutcome out;
    out.config = current;
    for (Param p : allParams()) {
        const std::uint32_t want = paramValue(predicted, p);
        if (want == paramValue(current, p))
            continue;
        const HwConfig single = withParam(current, p, want);
        const ReconfigCost rc =
            cost_model.cost(current, single, energy_efficient_mode);
        bool accept = false;
        switch (kindV) {
          case PolicyKind::Conservative:
            // Never pay a flush: super-fine changes only.
            accept = !rc.flushL1 && !rc.flushL2;
            break;
          case PolicyKind::Hybrid:
            // Penalizes bursts of reconfiguration after short epochs
            // but allows occasional expensive switches after long ones.
            accept = rc.seconds <= toleranceV * last_epoch_seconds;
            break;
          case PolicyKind::Aggressive:
            accept = true;
            break;
        }
        out.decisions.push_back(
            {p, paramValue(current, p), want, accept, rc});
        if (accept)
            out.config = withParam(out.config, p, want);
    }
    // Aggressive follows the prediction wholesale (including any field
    // outside the per-parameter loop), exactly as before the audit
    // trail existed.
    if (kindV == PolicyKind::Aggressive)
        out.config = predicted;
    return out;
}

} // namespace sadapt
