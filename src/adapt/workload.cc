#include "adapt/workload.hh"

#include "common/logging.hh"
#include "kernels/spmspm.hh"
#include "kernels/spmspv.hh"
#include "sparse/csc.hh"

namespace sadapt {

namespace {

RunParams
runParamsFor(const WorkloadOptions &opts, std::uint64_t default_epoch)
{
    RunParams rp;
    rp.shape = opts.shape;
    rp.memBandwidth = opts.memBandwidth;
    rp.epochFpOps =
        opts.epochFpOps != 0 ? opts.epochFpOps : default_epoch;
    return rp;
}

} // namespace

Workload
makeSpMSpMWorkload(const std::string &name, const CsrMatrix &a,
                   const WorkloadOptions &opts)
{
    return makeSpMSpMWorkload(name, a, a.transposed(), opts);
}

Workload
makeSpMSpMWorkload(const std::string &name, const CsrMatrix &a,
                   const CsrMatrix &b, const WorkloadOptions &opts)
{
    auto build = buildSpMSpM(CscMatrix(a), b, opts.shape, opts.l1Type);
    return Workload{name, std::move(build.trace),
                    runParamsFor(opts, 5000), opts.l1Type};
}

Workload
makeSpMSpVWorkload(const std::string &name, const CsrMatrix &a,
                   const SparseVector &x, const WorkloadOptions &opts)
{
    SADAPT_ASSERT(x.dim() == a.cols(), "vector dimension mismatch");
    auto build = buildSpMSpV(CscMatrix(a), x, opts.shape, opts.l1Type);
    return Workload{name, std::move(build.trace),
                    runParamsFor(opts, 500), opts.l1Type};
}

} // namespace sadapt
