#include "adapt/trainer.hh"

#include <cmath>

#include "adapt/telemetry.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "sparse/generators.hh"

namespace sadapt {

TrainingSet::TrainingSet()
{
    for (std::size_t i = 0; i < numParams; ++i)
        perParam[i] = Dataset(telemetryFeatureNames());
}

void
TrainingSet::add(const std::vector<double> &features,
                 const HwConfig &best)
{
    for (std::size_t i = 0; i < numParams; ++i)
        perParam[i].add(features, paramValue(best, allParams()[i]));
}

PerfCounterSample
aggregateCounters(const std::vector<EpochRecord> &recs, int phase)
{
    PerfCounterSample avg;
    std::vector<double> sums(PerfCounterSample::count(), 0.0);
    double weight = 0.0;
    for (const auto &rec : recs) {
        if (phase >= 0 && rec.phase != phase)
            continue;
        const double w = static_cast<double>(rec.cycles);
        const auto v = rec.counters.toVector();
        for (std::size_t i = 0; i < v.size(); ++i)
            sums[i] += v[i] * w;
        weight += w;
    }
    if (weight <= 0.0)
        return avg;
    // Rebuild the sample from the averaged flat vector.
    auto it = sums.begin();
    auto next = [&] { return *it++ / weight; };
    avg.l1AccessThroughput = next();
    avg.l1Occupancy = next();
    avg.l1MissRate = next();
    avg.l1PrefetchPerAccess = next();
    avg.l1CapNorm = next();
    avg.l2AccessThroughput = next();
    avg.l2Occupancy = next();
    avg.l2MissRate = next();
    avg.l2PrefetchPerAccess = next();
    avg.l2CapNorm = next();
    avg.l1XbarContentionRatio = next();
    avg.l2XbarContentionRatio = next();
    avg.gpeIpc = next();
    avg.gpeFpIpc = next();
    avg.lcpIpc = next();
    avg.lcpFpIpc = next();
    avg.clockNorm = next();
    avg.memReadBwUtil = next();
    avg.memWriteBwUtil = next();
    return avg;
}

namespace {

/** Generate training examples from every phase of one workload. */
void
harvestWorkload(const Workload &wl, const TrainerOptions &opts,
                TrainingSet &set, Rng &rng)
{
    EpochDb db(wl);
    const std::size_t num_phases = wl.trace.phaseNames().size();
    for (std::size_t phase = 0; phase < num_phases; ++phase) {
        SearchOutcome outcome = findBestConfig(
            db, opts.mode, static_cast<int>(phase), opts.search, rng);
        for (const HwConfig &sample : outcome.sampled) {
            const PerfCounterSample counters = aggregateCounters(
                db.epochs(sample), static_cast<int>(phase));
            set.add(buildFeatures(sample, counters), outcome.best);
        }
    }
}

} // namespace

TrainingSet
buildTrainingSet(const TrainerOptions &opts)
{
    TrainingSet set;
    Rng rng(opts.seed);

    auto sweep = [&](bool spmspm, std::uint32_t dim) {
        for (double density : opts.densities) {
            const auto nnz = static_cast<std::uint64_t>(
                std::llround(density * dim * double(dim)));
            CsrMatrix m = makeUniformRandom(
                dim, std::max<std::uint64_t>(nnz, dim), rng);
            for (double bw : opts.bandwidths) {
                WorkloadOptions wo;
                wo.shape = opts.shape;
                wo.memBandwidth = bw;
                wo.l1Type = opts.l1Type;
                if (spmspm) {
                    harvestWorkload(
                        makeSpMSpMWorkload(str("train-mm-", dim, "-",
                                               density, "-", bw),
                                           m, wo),
                        opts, set, rng);
                } else {
                    SparseVector x = SparseVector::random(
                        dim, opts.vectorDensity, rng);
                    harvestWorkload(
                        makeSpMSpVWorkload(str("train-mv-", dim, "-",
                                               density, "-", bw),
                                           m, x, wo),
                        opts, set, rng);
                }
            }
        }
    };

    if (opts.includeSpMSpM)
        for (std::uint32_t dim : opts.spmspmDims)
            sweep(true, dim);
    if (opts.includeSpMSpV)
        for (std::uint32_t dim : opts.spmspvDims)
            sweep(false, dim);
    SADAPT_ASSERT(set.size() > 0, "training sweep produced no examples");
    return set;
}

} // namespace sadapt
