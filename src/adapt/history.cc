#include "adapt/history.hh"

#include "adapt/telemetry.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace sadapt {

std::size_t
numHistoryFeatures()
{
    return numParams + 2 * PerfCounterSample::count();
}

const std::vector<std::string> &
historyFeatureNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> n = telemetryFeatureNames();
        for (const auto &c : PerfCounterSample::names())
            n.push_back("delta_" + c);
        return n;
    }();
    return names;
}

std::vector<double>
buildHistoryFeatures(const HwConfig &cfg, const PerfCounterSample &cur,
                     const PerfCounterSample &prev)
{
    std::vector<double> f = buildFeatures(cfg, cur);
    const auto c = cur.toVector();
    const auto p = prev.toVector();
    for (std::size_t i = 0; i < c.size(); ++i)
        f.push_back(c[i] - p[i]);
    return f;
}

namespace {

/** TrainingSet whose datasets use the history feature layout. */
TrainingSet
emptyHistorySet()
{
    TrainingSet set;
    for (std::size_t i = 0; i < numParams; ++i)
        set.perParam[i] = Dataset(historyFeatureNames());
    return set;
}

} // namespace

TrainingSet
buildHistoryTrainingSet(EpochDb &db, OptMode mode,
                        std::size_t num_samples, Rng &rng)
{
    TrainingSet set = emptyHistorySet();
    const ConfigSpace space(db.workload().l1Type);
    const std::vector<HwConfig> samples =
        space.sample(num_samples, rng);
    const std::size_t epochs = db.numEpochs();
    if (epochs < 3)
        return set;

    // Per-epoch locally-best candidate (ignoring transition costs —
    // the policy handles those at runtime).
    std::vector<HwConfig> best_at(epochs, samples.front());
    for (std::size_t e = 0; e < epochs; ++e) {
        double best_metric = -1.0;
        for (const HwConfig &c : samples) {
            const EpochRecord &rec = db.epochs(c)[e];
            const double m = metricValue(mode, rec.flops, rec.seconds,
                                         rec.totalEnergy());
            if (m > best_metric) {
                best_metric = m;
                best_at[e] = c;
            }
        }
    }
    for (const HwConfig &c : samples) {
        const auto &recs = db.epochs(c);
        for (std::size_t t = 1; t + 1 < epochs; ++t) {
            set.add(buildHistoryFeatures(c, recs[t].counters,
                                         recs[t - 1].counters),
                    best_at[t + 1]);
        }
    }
    return set;
}

void
mergeTrainingSets(TrainingSet &into, const TrainingSet &from)
{
    for (std::size_t i = 0; i < numParams; ++i) {
        SADAPT_ASSERT(into.perParam[i].numFeatures() ==
                          from.perParam[i].numFeatures(),
                      "training set feature layouts differ");
        const Dataset &src = from.perParam[i];
        for (std::size_t r = 0; r < src.size(); ++r) {
            auto f = src.features(r);
            into.perParam[i].add({f.begin(), f.end()}, src.label(r));
        }
    }
}

void
HistoryPredictor::train(const TrainingSet &set, const TreeParams &params)
{
    SADAPT_ASSERT(set.size() > 0, "empty history training set");
    for (std::size_t i = 0; i < numParams; ++i)
        trees[i].fit(set.perParam[i], params);
}

HwConfig
HistoryPredictor::predict(const HwConfig &current,
                          const PerfCounterSample &cur,
                          const PerfCounterSample &prev) const
{
    SADAPT_ASSERT(trained(), "predict on an untrained predictor");
    const std::vector<double> f =
        buildHistoryFeatures(current, cur, prev);
    HwConfig out = current;
    for (std::size_t i = 0; i < numParams; ++i) {
        const Param p = allParams()[i];
        out = withParam(out, p,
                        std::min(trees[i].predict(f),
                                 paramCardinality(p) - 1));
    }
    return out;
}

bool
HistoryPredictor::trained() const
{
    for (const auto &t : trees)
        if (!t.trained())
            return false;
    return true;
}

const DecisionTreeClassifier &
HistoryPredictor::tree(Param p) const
{
    return trees[static_cast<std::size_t>(p)];
}

Schedule
sparseAdaptHistorySchedule(EpochDb &db,
                           const HistoryPredictor &predictor,
                           const Policy &policy, OptMode mode,
                           const ReconfigCostModel &cost_model,
                           const HwConfig &initial)
{
    const bool ee = mode == OptMode::EnergyEfficient;
    const std::size_t num_epochs = db.numEpochs();
    Schedule schedule;
    schedule.configs.reserve(num_epochs);
    HwConfig current = initial;
    PerfCounterSample prev{};
    for (std::size_t e = 0; e < num_epochs; ++e) {
        schedule.configs.push_back(current);
        const EpochRecord &rec = db.epochs(current)[e];
        // Epoch 0 has no history: the delta features are zero.
        const PerfCounterSample &prior =
            e == 0 ? rec.counters : prev;
        const HwConfig predicted =
            predictor.predict(current, rec.counters, prior);
        current = policy.apply(current, predicted, rec.seconds,
                               cost_model, ee);
        prev = rec.counters;
    }
    return schedule;
}

} // namespace sadapt
