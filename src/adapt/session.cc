#include "adapt/session.hh"

#include "adapt/metrics.hh"
#include "adapt/telemetry.hh"

namespace sadapt {

namespace {

/**
 * Journaling hooks of the per-epoch step. Every function is a no-op on
 * a null observer; none of them feeds anything back into the control
 * flow, so an attached observer cannot change a decision.
 */

void
emitEpochEvent(obs::RunObserver *o, std::size_t epoch, double t_now,
               const HwConfig &cfg, const EpochRecord &rec,
               OptMode mode)
{
    if (o == nullptr)
        return;
    o->beginEpoch(epoch, t_now);
    o->emit("adapt/controller", "epoch",
            {{"cfg", cfg.toSpec()},
             {"seconds", rec.seconds},
             {"flops", rec.flops},
             {"energy_j", rec.totalEnergy()},
             {"metric", metricValue(mode, rec.flops, rec.seconds,
                                    rec.totalEnergy())}});
    o->metrics().counter("adapt/controller/epochs").add();
}

void
emitPrediction(obs::RunObserver *o, const HwConfig &predicted)
{
    if (o == nullptr)
        return;
    std::vector<std::pair<std::string, obs::FieldValue>> fields;
    fields.emplace_back("cfg", predicted.toSpec());
    for (Param p : allParams())
        fields.emplace_back(
            paramName(p),
            static_cast<std::int64_t>(paramValue(predicted, p)));
    o->emit("adapt/predictor", "prediction", std::move(fields));
}

void
emitPolicyDecisions(obs::RunObserver *o, const PolicyOutcome &outcome)
{
    if (o == nullptr)
        return;
    for (const PolicyDecision &d : outcome.decisions) {
        o->emit("adapt/policy", "policy",
                {{"param", paramName(d.param)},
                 {"from", static_cast<std::int64_t>(d.from)},
                 {"to", static_cast<std::int64_t>(d.to)},
                 {"accepted", d.accepted},
                 {"cost_s", d.cost.seconds},
                 {"cost_j", d.cost.energy},
                 {"flush", d.cost.flushL1 || d.cost.flushL2}});
        o->metrics().counter("adapt/policy/proposed").add();
        o->metrics()
            .counter(d.accepted ? "adapt/policy/accepted"
                                : "adapt/policy/vetoed")
            .add();
    }
}

void
emitReconfig(obs::RunObserver *o, const HwConfig &from,
             const HwConfig &to, const ReconfigCostModel &cost_model,
             bool ee)
{
    if (o == nullptr || from == to)
        return;
    const ReconfigCost rc = cost_model.cost(from, to, ee);
    o->emit("adapt/controller", "reconfig",
            {{"from", from.toSpec()},
             {"to", to.toSpec()},
             {"cost_s", rc.seconds},
             {"cost_j", rc.energy},
             {"flush_l1", rc.flushL1},
             {"flush_l2", rc.flushL2}});
    o->metrics().counter("adapt/controller/reconfigs").add();
}

/** Journal "fault" events appended to the injector log this epoch. */
void
emitNewFaultEvents(obs::RunObserver *o, FaultInjector *faults,
                   std::size_t &seen)
{
    if (faults == nullptr)
        return;
    const std::vector<FaultEvent> &log = faults->events();
    if (o != nullptr) {
        for (std::size_t i = seen; i < log.size(); ++i) {
            o->emit("sim/faults", "fault",
                    {{"kind", faultKindName(log[i].kind)},
                     {"detail", log[i].detail}});
            o->metrics().counter("sim/faults/injected").add();
        }
    }
    seen = log.size();
}

void
emitGuardEvent(obs::RunObserver *o, const std::string &verdict,
               std::size_t flagged)
{
    if (o == nullptr)
        return;
    o->emit("adapt/guard", "guard",
            {{"verdict", verdict},
             {"flagged", static_cast<std::int64_t>(flagged)}});
    o->metrics().counter("adapt/guard/" + verdict).add();
}

/** The robust loop body: fault channel, guard, watchdog, policy. */
void
stepEpochRobust(SessionState &s, const SessionContext &ctx,
                const EpochRecord &rec)
{
    const bool ee = ctx.mode == OptMode::EnergyEfficient;
    obs::RunObserver *observer = ctx.observer;
    const auto epoch = static_cast<std::uint32_t>(s.epoch);

    std::optional<PerfCounterSample> received = ctx.faults
        ? ctx.faults->filterSample(epoch, rec.counters)
        : std::optional<PerfCounterSample>(rec.counters);

    HwConfig commanded = s.current;
    if (!ctx.useGuard) {
        // Naive loop: a missing sample reads as all-zero counters
        // (stuck telemetry register); corruption feeds the
        // predictor verbatim.
        const PerfCounterSample sample =
            received.value_or(PerfCounterSample{});
        const HwConfig predicted =
            ctx.predictor->predict(s.current, sample);
        emitPrediction(observer, predicted);
        const PolicyOutcome outcome = ctx.policy->applyDetailed(
            s.current, predicted, rec.seconds, *ctx.costModel, ee);
        emitPolicyDecisions(observer, outcome);
        commanded = outcome.config;
    } else {
        PerfCounterSample sample;
        bool usable = false;
        if (!received) {
            s.guard.recordMissing();
            emitGuardEvent(observer, "missing", 0);
        } else {
            sample = *received;
            const GuardReport report = s.guard.inspect(sample);
            emitGuardEvent(observer,
                           sampleVerdictName(report.verdict),
                           report.flagged.size());
            if (report.verdict == SampleVerdict::Bad) {
                // Discard; fall back to last-known-good features.
                if (s.guard.lastKnownGood()) {
                    sample = *s.guard.lastKnownGood();
                    usable = true;
                }
            } else {
                usable = true;
            }
        }

        const double realized = metricValue(
            ctx.mode, rec.flops, rec.seconds, rec.totalEnergy());
        const Watchdog::Decision wd =
            s.watchdog.observe(realized, usable);
        if (observer != nullptr)
            observer->metrics()
                .gauge("adapt/watchdog/reference")
                .set(s.watchdog.reference());
        if (wd.revert) {
            commanded = s.safe;
        } else if (wd.hold || !usable) {
            commanded = s.current;
        } else {
            const HwConfig predicted =
                ctx.predictor->predict(s.current, sample);
            emitPrediction(observer, predicted);
            const PolicyOutcome outcome = ctx.policy->applyDetailed(
                s.current, predicted, rec.seconds, *ctx.costModel,
                ee);
            emitPolicyDecisions(observer, outcome);
            commanded = outcome.config;
        }
    }

    s.current = ctx.faults
        ? ctx.faults->applyCommand(epoch, s.current, commanded)
        : commanded;
    emitNewFaultEvents(observer, ctx.faults, s.faultsSeen);
    emitReconfig(observer, s.schedule.configs.back(), s.current,
                 *ctx.costModel, ee);
    s.tNow += rec.seconds;
    if (!(s.current == s.schedule.configs.back()))
        s.tNow += ctx.costModel
                      ->cost(s.schedule.configs.back(), s.current, ee)
                      .seconds;
}

} // namespace

SessionState
makeSessionState(const HwConfig &initial, const SessionContext &ctx,
                 const GuardOptions &guard_opts,
                 const WatchdogOptions &watchdog_opts)
{
    SessionState s;
    s.current = initial;
    s.safe = baselineConfig(initial.l1Type);
    s.guard = TelemetryGuard(guard_opts);
    s.watchdog = Watchdog(watchdog_opts);
    s.watchdog.attachObserver(ctx.observer);
    s.faultsSeen =
        ctx.faults != nullptr ? ctx.faults->events().size() : 0;
    return s;
}

void
stepEpoch(SessionState &s, const SessionContext &ctx,
          const EpochRecord &rec, const HwConfig *predicted_hint)
{
    obs::RunObserver *observer = ctx.observer;
    s.schedule.configs.push_back(s.current);
    // Telemetry of the epoch that just ran under `s.current`.
    emitEpochEvent(observer, s.epoch, s.tNow, s.current, rec,
                   ctx.mode);
    if (ctx.robust) {
        stepEpochRobust(s, ctx, rec);
        ++s.epoch;
        return;
    }
    const bool ee = ctx.mode == OptMode::EnergyEfficient;
    const HwConfig predicted = predicted_hint != nullptr
        ? *predicted_hint
        : ctx.predictor->predict(s.current, rec.counters);
    emitPrediction(observer, predicted);
    const PolicyOutcome outcome = ctx.policy->applyDetailed(
        s.current, predicted, rec.seconds, *ctx.costModel, ee);
    emitPolicyDecisions(observer, outcome);
    emitReconfig(observer, s.current, outcome.config, *ctx.costModel,
                 ee);
    s.tNow += rec.seconds;
    if (!(outcome.config == s.current))
        s.tNow += ctx.costModel->cost(s.current, outcome.config, ee)
                      .seconds;
    s.current = outcome.config;
    ++s.epoch;
}

} // namespace sadapt
