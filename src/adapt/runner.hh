/**
 * @file
 * High-level comparison runner: evaluates every control scheme of
 * Section 5.3 on one workload, sharing the epoch database and sampled
 * candidate set (Appendix A.7 step 4 uses S = 256 samples; the sample
 * count here is configurable to fit single-core budgets).
 */

#ifndef SADAPT_ADAPT_RUNNER_HH
#define SADAPT_ADAPT_RUNNER_HH

#include <optional>

#include "adapt/controllers.hh"

namespace sadapt {

/** Knobs of one scheme comparison. */
struct ComparisonOptions
{
    OptMode mode = OptMode::EnergyEfficient;

    /** S: random configurations sampled for the ideal/oracle schemes. */
    std::size_t oracleSamples = 32;

    /** Hysteresis policy for SparseAdapt (Section 5.4 defaults are
     * per-kernel; callers set this explicitly). */
    Policy policy{PolicyKind::Conservative};

    /** ProfileAdapt emulation parameters. */
    double profilingFraction = 0.25;

    std::uint64_t seed = 1;

    /**
     * Replay workers for the shared EpochDb's batch sweeps: 1 forces
     * the exact serial path, 0 resolves to defaultJobs()
     * (SPARSEADAPT_JOBS or the hardware thread count). Any value
     * yields bit-identical results (DESIGN.md section 9).
     */
    unsigned jobs = 1;

    /**
     * Optional observability sink (not owned; must outlive the
     * Comparison). When set, the shared EpochDb exports sim/ metrics
     * into it and the SparseAdapt loops journal their decision trail.
     * Pure observer: every ScheduleEval is identical without it.
     */
    obs::RunObserver *observer = nullptr;

    /**
     * Optional persistent epoch store (not owned; must be open and
     * outlive the Comparison). When set, the shared EpochDb
     * warm-starts every sweep from it and checkpoints every replay
     * into it; every served result is bit-identical to the replay it
     * memoizes, so ScheduleEvals are unchanged (DESIGN.md section 10).
     */
    store::EpochStore *store = nullptr;
};

/**
 * Evaluates all comparison points on one workload. Results are
 * stitched from a shared EpochDb, so each hardware configuration is
 * simulated at most once.
 */
class Comparison
{
  public:
    /**
     * @param workload must outlive the Comparison.
     * @param predictor trained predictor for sparseAdapt(); may be
     *        null if sparseAdapt() is never called.
     */
    Comparison(const Workload &workload, const Predictor *predictor,
               const ComparisonOptions &opts);

    /** Any static configuration, stitched (no reconfigurations). */
    ScheduleEval staticEval(const HwConfig &cfg);

    /** Table 4 static systems. */
    ScheduleEval baseline();
    ScheduleEval bestAvg();
    ScheduleEval maxCfg();

    /** Upper-bound schemes (Section 6.2). */
    ScheduleEval idealStatic();
    ScheduleEval idealGreedy();
    ScheduleEval oracle();

    /** The prior scheme (Section 6.4). */
    ScheduleEval profileAdapt(bool ideal);

    /** The paper's contribution. */
    ScheduleEval sparseAdapt();

    /** The SparseAdapt schedule itself (for timeline plots). */
    const Schedule &sparseAdaptSchedule();

    /** SparseAdapt under fault injection, with degraded-mode stats. */
    struct RobustEval
    {
        ScheduleEval eval;
        FaultStats faults;
        GuardStats guard;
        std::uint64_t watchdogReverts = 0;
        std::uint64_t watchdogHeldEpochs = 0;
    };

    /**
     * Run the robust SparseAdapt loop under a fault specification and
     * stitch the resulting schedule. `guarded == false` disables the
     * TelemetryGuard/Watchdog defenses (the naive loop), for
     * robustness comparisons. Deterministic per (spec, workload).
     */
    RobustEval sparseAdaptRobust(
        const FaultSpec &spec, bool guarded = true,
        const RobustAdaptOptions &robust_opts = RobustAdaptOptions{});

    EpochDb &db() { return dbV; }
    const std::vector<HwConfig> &candidates();
    const ReconfigCostModel &costModel() const { return cost; }
    const HwConfig &initialConfig() const { return initial; }

  private:
    const Workload &wl;
    const Predictor *pred;
    ComparisonOptions opts;
    EpochDb dbV;
    ReconfigCostModel cost;
    HwConfig initial;
    std::vector<HwConfig> candidatesV;
    std::optional<Schedule> greedyCache;
    std::optional<Schedule> sparseAdaptCache;

    const Schedule &greedySchedule();
};

} // namespace sadapt

#endif // SADAPT_ADAPT_RUNNER_HH
