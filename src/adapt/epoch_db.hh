/**
 * @file
 * Per-configuration epoch database and the stitching engine.
 *
 * Following the paper's artifact methodology (Appendix A.7, steps 4-8),
 * each workload is simulated in its entirety once per visited hardware
 * configuration, recording per-epoch time/energy/counters. Because
 * epochs are delimited by FP-op counts, their boundaries align across
 * configurations, so any dynamic reconfiguration scheme can be
 * evaluated exactly by stitching per-epoch segments together and
 * charging reconfiguration penalties at the seams.
 *
 * Full-trace replays of distinct configurations are independent given
 * the shared immutable Trace, so the database exposes a batch
 * ensure() API that replays missing configurations concurrently (one
 * Transmuter per task) and commits the results in request order — the
 * memoized state, exported metrics and every downstream ScheduleEval
 * are bit-identical to a jobs=1 run (DESIGN.md section 9).
 */

#ifndef SADAPT_ADAPT_EPOCH_DB_HH
#define SADAPT_ADAPT_EPOCH_DB_HH

#include <span>
#include <unordered_map>

#include "adapt/metrics.hh"
#include "adapt/workload.hh"
#include "sim/reconfig.hh"
#include "sim/schedule.hh"
#include "sim/trace_columnar.hh"
#include "store/epoch_store.hh"

namespace sadapt {

/**
 * Lazily memoized full-run simulations of one workload, one per
 * hardware configuration.
 */
class EpochDb
{
  public:
    explicit EpochDb(const Workload &workload);

    /**
     * Replay parallelism for ensure(): jobs <= 1 is the exact serial
     * path (and the default); higher values replay missing
     * configurations on a pool of that many workers.
     */
    void setJobs(unsigned jobs) { jobsV = jobs > 0 ? jobs : 1; }
    unsigned jobs() const { return jobsV; }

    /**
     * Pre-announce a candidate set: simulate every configuration of
     * `cfgs` not yet in the cache, using up to jobs() concurrent
     * replays, and commit the results in request order. Calling
     * ensure() before a loop of result()/epochs() calls turns the
     * loop's serial cache misses into one parallel batch; with
     * jobs() == 1 it simulates serially in the same order and is
     * behaviorally identical to not calling it at all.
     */
    void ensure(std::span<const HwConfig> cfgs);

    /** Full simulation result under one configuration (memoized). */
    const SimResult &result(const HwConfig &cfg);

    /** Per-epoch records under one configuration. */
    const std::vector<EpochRecord> &epochs(const HwConfig &cfg);

    /** Number of epochs (identical for every configuration). */
    std::size_t numEpochs();

    /** Number of configurations simulated so far. */
    std::size_t simulatedConfigs() const { return cache.size(); }

    /**
     * Export sim/ metrics from every future (non-memoized) simulation
     * into a registry. Attach before the first result()/epochs() call
     * to cover the whole run; null detaches.
     */
    void
    attachMetrics(obs::MetricRegistry *metrics)
    {
        metricsV = metrics;
        sim.setMetrics(metrics);
    }

    const Workload &workload() const { return wl; }

    /**
     * Warm-start from (and checkpoint into) a persistent epoch store.
     * Every subsequent cache miss consults the store under this
     * workload's fingerprint before replaying, and every replay is
     * written back at its commit point — in request order, so the
     * store file's bytes are identical for any jobs() setting. Null
     * detaches. The store outlives the database (caller-owned).
     */
    void attachStore(store::EpochStore *epoch_store);

    /** The attached store, or null. */
    store::EpochStore *epochStore() const { return storeV; }

    /**
     * The workload fingerprint used to address the attached store;
     * 0 until a store is attached.
     */
    std::uint64_t storeFingerprint() const { return fingerprintV; }

    /**
     * Cache key of a configuration: the dense ConfigSpace encoding
     * (exactly HwConfig::encode(), proven injective over the whole
     * space by the analysis-suite encode self-check), so keys
     * round-trip back to the configuration via keyConfig(). All
     * configurations of one database share the workload's compile-time
     * L1 memory type (asserted on every simulation).
     */
    static std::uint64_t key(const HwConfig &cfg);

    /** Decode a cache key back to its configuration. */
    HwConfig keyConfig(std::uint64_t key) const;

    /**
     * The subset of `cfgs` that ensure() would actually have to
     * simulate: deduplicated, in request order, minus configurations
     * already memoized or already complete in the attached store.
     * Pure query — it uses EpochStore::contains(), not get(), so it
     * perturbs neither the LRU nor the hit/miss accounting and a
     * jobs=1 run stays bit-identical whether or not anyone asked.
     * The sweep fabric uses it as the phase work list.
     */
    std::vector<HwConfig>
    pendingConfigs(std::span<const HwConfig> cfgs) const;

  private:
    const Workload &wl;
    /**
     * The workload trace converted once to the columnar SoA layout;
     * every replay (serial or parallel) runs from this shared
     * immutable view, keeping the per-configuration conversion cost
     * out of the sweep inner loop. Results are bit-identical to
     * replaying the AoS trace directly.
     */
    ColumnarTrace soa;
    Transmuter sim;
    unsigned jobsV = 1;
    obs::MetricRegistry *metricsV = nullptr;
    store::EpochStore *storeV = nullptr;
    std::uint64_t fingerprintV = 0;
    std::unordered_map<std::uint64_t, SimResult> cache;

    const SimResult &commit(std::uint64_t key, SimResult res);

    /** Replay cfg on the member simulator, checkpoint it, commit it. */
    const SimResult &simulateAndCommit(std::uint64_t key,
                                       const HwConfig &cfg);
};

/**
 * Visit order for one fabric worker over a phase's pending sweep
 * cells: the indices [0, cellCount) with unclaimed cells first —
 * rotated by workerIndex modulo workerCount so concurrent workers
 * start their scans at disjoint offsets and rarely race for the same
 * claim — followed by the live-claimed cells in the same rotated
 * order (stragglers a finishing worker may choose to duplicate;
 * duplicated work is harmless because replays are bit-identical and
 * the merge deduplicates). `claimed.size()` must equal `cellCount`.
 */
std::vector<std::size_t>
scheduleSweepCells(std::size_t cellCount,
                   const std::vector<bool> &claimed,
                   unsigned workerIndex, unsigned workerCount);

/** Aggregate outcome of a stitched schedule. */
struct ScheduleEval
{
    double flops = 0.0;
    Seconds seconds = 0.0;       //!< total, including reconfigurations
    Joules energy = 0.0;         //!< total, including reconfigurations
    Seconds reconfigSeconds = 0.0;
    Joules reconfigEnergy = 0.0;
    std::uint32_t reconfigCount = 0;

    double gflops() const;
    double gflopsPerWatt() const;
    double metric(OptMode mode) const;
};

/**
 * Stitch a schedule: sum the chosen configuration's epoch segments and
 * charge a reconfiguration penalty at every configuration change
 * (including the initial switch away from `initial`, if any).
 */
ScheduleEval evaluateSchedule(EpochDb &db, const Schedule &schedule,
                              const ReconfigCostModel &cost_model,
                              OptMode mode, const HwConfig &initial);

/**
 * evaluateSchedule() for a schedule covering only the first
 * `schedule.configs.size()` epochs (<= the workload's epoch count):
 * epochs past the prefix contribute nothing. The serve layer uses it
 * for sessions closed early by their traffic-script epoch budget.
 */
ScheduleEval evaluateSchedulePrefix(EpochDb &db,
                                    const Schedule &schedule,
                                    const ReconfigCostModel &cost_model,
                                    OptMode mode,
                                    const HwConfig &initial);

/**
 * Stitch a schedule restricted to the epochs of one explicit phase
 * (others contribute nothing); used to compute per-phase metrics.
 */
ScheduleEval evaluateScheduleForPhase(EpochDb &db,
                                      const Schedule &schedule,
                                      const ReconfigCostModel &cost_model,
                                      OptMode mode,
                                      const HwConfig &initial, int phase);

} // namespace sadapt

#endif // SADAPT_ADAPT_EPOCH_DB_HH
