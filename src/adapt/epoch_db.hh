/**
 * @file
 * Per-configuration epoch database and the stitching engine.
 *
 * Following the paper's artifact methodology (Appendix A.7, steps 4-8),
 * each workload is simulated in its entirety once per visited hardware
 * configuration, recording per-epoch time/energy/counters. Because
 * epochs are delimited by FP-op counts, their boundaries align across
 * configurations, so any dynamic reconfiguration scheme can be
 * evaluated exactly by stitching per-epoch segments together and
 * charging reconfiguration penalties at the seams.
 */

#ifndef SADAPT_ADAPT_EPOCH_DB_HH
#define SADAPT_ADAPT_EPOCH_DB_HH

#include <unordered_map>

#include "adapt/metrics.hh"
#include "adapt/workload.hh"
#include "sim/reconfig.hh"
#include "sim/schedule.hh"

namespace sadapt {

/**
 * Lazily memoized full-run simulations of one workload, one per
 * hardware configuration.
 */
class EpochDb
{
  public:
    explicit EpochDb(const Workload &workload);

    /** Full simulation result under one configuration (memoized). */
    const SimResult &result(const HwConfig &cfg);

    /** Per-epoch records under one configuration. */
    const std::vector<EpochRecord> &epochs(const HwConfig &cfg);

    /** Number of epochs (identical for every configuration). */
    std::size_t numEpochs();

    /** Number of configurations simulated so far. */
    std::size_t simulatedConfigs() const { return cache.size(); }

    /**
     * Export sim/ metrics from every future (non-memoized) simulation
     * into a registry. Attach before the first result()/epochs() call
     * to cover the whole run; null detaches.
     */
    void attachMetrics(obs::MetricRegistry *metrics)
    {
        sim.setMetrics(metrics);
    }

    const Workload &workload() const { return wl; }

  private:
    const Workload &wl;
    Transmuter sim;
    std::unordered_map<std::uint64_t, SimResult> cache;

    static std::uint64_t key(const HwConfig &cfg);
};

/** Aggregate outcome of a stitched schedule. */
struct ScheduleEval
{
    double flops = 0.0;
    Seconds seconds = 0.0;       //!< total, including reconfigurations
    Joules energy = 0.0;         //!< total, including reconfigurations
    Seconds reconfigSeconds = 0.0;
    Joules reconfigEnergy = 0.0;
    std::uint32_t reconfigCount = 0;

    double gflops() const;
    double gflopsPerWatt() const;
    double metric(OptMode mode) const;
};

/**
 * Stitch a schedule: sum the chosen configuration's epoch segments and
 * charge a reconfiguration penalty at every configuration change
 * (including the initial switch away from `initial`, if any).
 */
ScheduleEval evaluateSchedule(EpochDb &db, const Schedule &schedule,
                              const ReconfigCostModel &cost_model,
                              OptMode mode, const HwConfig &initial);

/**
 * Stitch a schedule restricted to the epochs of one explicit phase
 * (others contribute nothing); used to compute per-phase metrics.
 */
ScheduleEval evaluateScheduleForPhase(EpochDb &db,
                                      const Schedule &schedule,
                                      const ReconfigCostModel &cost_model,
                                      OptMode mode,
                                      const HwConfig &initial, int phase);

} // namespace sadapt

#endif // SADAPT_ADAPT_EPOCH_DB_HH
