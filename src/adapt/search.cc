#include "adapt/search.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace sadapt {

double
staticPhaseMetric(EpochDb &db, const HwConfig &cfg, OptMode mode,
                  int phase)
{
    double flops = 0.0;
    Seconds seconds = 0.0;
    Joules energy = 0.0;
    for (const auto &rec : db.epochs(cfg)) {
        if (phase >= 0 && rec.phase != phase)
            continue;
        flops += rec.flops;
        seconds += rec.seconds;
        energy += rec.totalEnergy();
    }
    return metricValue(mode, flops, seconds, energy);
}

SearchOutcome
findBestConfig(EpochDb &db, OptMode mode, int phase,
               const SearchParams &params, Rng &rng)
{
    SADAPT_ASSERT(params.randomSamples >= 1, "need at least one sample");
    const ConfigSpace space(db.workload().l1Type);

    auto best_of = [&](const std::vector<HwConfig> &candidates,
                       HwConfig seed, double seed_metric) {
        HwConfig best = seed;
        double best_metric = seed_metric;
        for (const auto &cfg : candidates) {
            const double m = staticPhaseMetric(db, cfg, mode, phase);
            if (m > best_metric) {
                best_metric = m;
                best = cfg;
            }
        }
        return std::pair<HwConfig, double>(best, best_metric);
    };

    SearchOutcome out;
    // Step 1: random sampling. Each step announces its candidate set
    // up front so the database can replay cache misses in parallel;
    // the argmax loops below then hit only memoized results.
    out.sampled = space.sample(params.randomSamples, rng);
    db.ensure(out.sampled);
    auto [rand_best, rand_metric] =
        best_of(out.sampled, out.sampled.front(),
                staticPhaseMetric(db, out.sampled.front(), mode,
                                  phase));
    out.bestRandom = rand_best;

    // Step 2: neighbor evaluation around Y_rand.
    HwConfig current = rand_best;
    double current_metric = rand_metric;
    if (params.neighborEval) {
        std::vector<HwConfig> nbrs = space.neighbors(current);
        if (nbrs.size() > params.neighborCap) {
            rng.shuffle(nbrs);
            nbrs.resize(params.neighborCap);
        }
        db.ensure(nbrs);
        std::tie(current, current_metric) =
            best_of(nbrs, current, current_metric);
    }
    out.bestNeighbor = current;

    // Step 3: independent sweep along each dimension; combine the
    // per-dimension argmaxes (conditional independence assumption).
    if (params.dimensionSweep) {
        // All dimensions sweep away from the same center, so their
        // union is known before any is evaluated — one batch.
        std::vector<HwConfig> sweeps;
        for (Param p : allParams()) {
            const auto dim = space.sweepDimension(current, p);
            sweeps.insert(sweeps.end(), dim.begin(), dim.end());
        }
        db.ensure(sweeps);
        HwConfig combined = current;
        for (Param p : allParams()) {
            double best_metric = -1.0;
            std::uint32_t best_value = paramValue(current, p);
            for (const HwConfig &cfg :
                 space.sweepDimension(current, p)) {
                const double m =
                    staticPhaseMetric(db, cfg, mode, phase);
                if (m > best_metric) {
                    best_metric = m;
                    best_value = paramValue(cfg, p);
                }
            }
            combined = withParam(combined, p, best_value);
        }
        current = combined;
    }
    out.best = current;
    return out;
}

} // namespace sadapt
