/**
 * @file
 * The SparseAdapt predictive model: an ensemble of per-parameter
 * decision trees (Sections 4.1 and 4.3), trained with k = 3-fold
 * cross-validated hyperparameter selection (Section 5.1).
 */

#ifndef SADAPT_ADAPT_PREDICTOR_HH
#define SADAPT_ADAPT_PREDICTOR_HH

#include <array>
#include <iosfwd>

#include "adapt/trainer.hh"
#include "ml/cross_validation.hh"

namespace sadapt {

/**
 * One decision tree per runtime-reconfigurable parameter. Given the
 * current configuration and the epoch's counter telemetry, predicts
 * the best configuration for the next epoch.
 */
class Predictor
{
  public:
    /** Per-parameter training diagnostics. */
    struct TrainReport
    {
        std::array<TreeParams, numParams> chosen;
        std::array<double, numParams> cvAccuracy{};
    };

    /**
     * Train with per-parameter grid-searched hyperparameters
     * (criterion, max_depth, min_samples_leaf; Section 5.1).
     */
    TrainReport train(const TrainingSet &set, Rng &rng);

    /** Train all trees with fixed hyperparameters (no search). */
    void trainFixed(const TrainingSet &set, const TreeParams &params);

    /**
     * Train with explicit per-parameter hyperparameters (the Figure 9
     * model-complexity sweep varies one tree's depth at a time).
     */
    void trainPerParam(const TrainingSet &set,
                       const std::array<TreeParams, numParams> &params);

    /** Predict the next-epoch configuration (Section 4, Figure 3a). */
    HwConfig predict(const HwConfig &current,
                     const PerfCounterSample &counters) const;

    /** Access one parameter's tree (for inspection/Figure 10). */
    const DecisionTreeClassifier &tree(Param p) const;

    /** Gini feature importance of one parameter's tree. */
    std::vector<double> featureImportance(Param p) const;

    bool trained() const;

    /** Serialize the whole ensemble. */
    void save(std::ostream &out) const;
    static Predictor load(std::istream &in);

  private:
    std::array<DecisionTreeClassifier, numParams> trees;
};

} // namespace sadapt

#endif // SADAPT_ADAPT_PREDICTOR_HH
