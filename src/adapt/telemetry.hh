/**
 * @file
 * Telemetry pre-processing: feature-vector construction for the
 * predictive model.
 *
 * The paper's key insight (Section 4.2) is to feed the *current
 * configuration parameter values* back to the model alongside the
 * performance counters; this removes ProfileAdapt's need for a
 * profiling configuration and multiplies the usable training data.
 */

#ifndef SADAPT_ADAPT_TELEMETRY_HH
#define SADAPT_ADAPT_TELEMETRY_HH

#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/counters.hh"

namespace sadapt {

/** Feature group labels for Figure 10 (counter classes + config). */
enum class FeatureGroup
{
    ConfigParams,
    L1RDCache,
    L2RDCache,
    RXBar,
    Cores,
    MemoryController,
};

/** Human-readable group name. */
std::string featureGroupName(FeatureGroup g);

/** Number of model input features (config params + counters). */
std::size_t numTelemetryFeatures();

/** Feature names, in buildFeatures() order. */
const std::vector<std::string> &telemetryFeatureNames();

/** Feature group per position, in buildFeatures() order. */
const std::vector<FeatureGroup> &telemetryFeatureGroups();

/**
 * Build the model input vector: the six configuration parameter values
 * (normalized to [0, 1]) followed by the normalized counter sample.
 */
std::vector<double> buildFeatures(const HwConfig &cfg,
                                  const PerfCounterSample &counters);

} // namespace sadapt

#endif // SADAPT_ADAPT_TELEMETRY_HH
