/**
 * @file
 * Optimization modes and their objective metrics.
 *
 * SparseAdapt operates under one of two constraints (Section 1):
 * Energy-Efficient mode maximizes GFLOPS/W (cloud/edge energy cost),
 * Power-Performance mode maximizes GFLOPS^3/W (performance-weighted,
 * akin to inverse energy-delay-squared).
 */

#ifndef SADAPT_ADAPT_METRICS_HH
#define SADAPT_ADAPT_METRICS_HH

#include <string>

#include "common/types.hh"

namespace sadapt {

/** The two operating modes of SparseAdapt. */
enum class OptMode
{
    EnergyEfficient,  //!< maximize GFLOPS/W
    PowerPerformance, //!< maximize GFLOPS^3/W
};

/** Human-readable mode name. */
std::string optModeName(OptMode mode);

/** GFLOPS for an aggregate (flops, time). */
double gflopsOf(double flops, Seconds seconds);

/** GFLOPS/W for an aggregate (flops, time, energy). */
double gflopsPerWattOf(double flops, Joules joules);

/**
 * The mode's objective for an aggregate execution:
 * GFLOPS/W in Energy-Efficient mode, GFLOPS^3/W in Power-Performance
 * mode. Higher is better.
 */
double metricValue(OptMode mode, double flops, Seconds seconds,
                   Joules joules);

} // namespace sadapt

#endif // SADAPT_ADAPT_METRICS_HH
