#include "adapt/epoch_db.hh"

#include <unordered_set>
#include <vector>

#include "common/logging.hh"
#include "common/threading.hh"
#include "obs/metrics.hh"
#include "store/fingerprint.hh"

namespace sadapt {

EpochDb::EpochDb(const Workload &workload)
    : wl(workload), soa(ColumnarTrace::fromTrace(workload.trace)),
      sim(workload.params)
{
}

std::uint64_t
EpochDb::key(const HwConfig &cfg)
{
    // The dense ConfigSpace code is injective over the runtime
    // parameters; the L1 memory type is fixed per workload (asserted
    // at every simulation), so it needs no bits of its own.
    return cfg.encode();
}

HwConfig
EpochDb::keyConfig(std::uint64_t key) const
{
    return ConfigSpace(wl.l1Type).decode(
        static_cast<std::uint32_t>(key));
}

const SimResult &
EpochDb::commit(std::uint64_t key, SimResult res)
{
    if (!cache.empty()) {
        SADAPT_ASSERT(res.epochs.size() ==
                          cache.begin()->second.epochs.size(),
                      "epoch boundaries must align across configs");
    }
    return cache.emplace(key, std::move(res)).first->second;
}

void
EpochDb::attachStore(store::EpochStore *epoch_store)
{
    storeV = epoch_store;
    fingerprintV = epoch_store != nullptr
        ? store::workloadFingerprint(wl.trace, wl.params, wl.l1Type)
        : 0;
}

const SimResult &
EpochDb::simulateAndCommit(std::uint64_t key, const HwConfig &cfg)
{
    SimResult res = sim.run(soa.view(), cfg);
    if (storeV != nullptr)
        storeV->put(fingerprintV, cfg, res);
    return commit(key, std::move(res));
}

const SimResult &
EpochDb::result(const HwConfig &cfg)
{
    SADAPT_ASSERT(cfg.l1Type == wl.l1Type,
                  "config L1 memory type must match the workload");
    const std::uint64_t k = key(cfg);
    auto it = cache.find(k);
    if (it != cache.end())
        return it->second;
    if (storeV != nullptr) {
        if (std::optional<SimResult> hit = storeV->get(fingerprintV,
                                                       cfg))
            return commit(k, std::move(*hit));
    }
    return simulateAndCommit(k, cfg);
}

void
EpochDb::ensure(std::span<const HwConfig> cfgs)
{
    // Collect the missing configurations, deduplicated, in request
    // order: that order is the commit order below, so cache insertion
    // order (and with it every downstream observation) matches what a
    // serial result() loop over `cfgs` would produce. An attached
    // store is consulted here, still in request order, so its
    // hit/miss accounting and LRU state are jobs-independent; only
    // true misses reach the parallel replay below.
    struct Pending
    {
        std::uint64_t key;
        HwConfig cfg;
        std::optional<SimResult> fromStore;
    };
    std::vector<Pending> pending;
    std::unordered_set<std::uint64_t> queued;
    std::size_t toSimulate = 0;
    for (const HwConfig &cfg : cfgs) {
        SADAPT_ASSERT(cfg.l1Type == wl.l1Type,
                      "config L1 memory type must match the workload");
        const std::uint64_t k = key(cfg);
        if (cache.contains(k) || !queued.insert(k).second)
            continue;
        std::optional<SimResult> hit;
        if (storeV != nullptr)
            hit = storeV->get(fingerprintV, cfg);
        if (!hit.has_value())
            ++toSimulate;
        pending.push_back(Pending{k, cfg, std::move(hit)});
    }
    if (jobsV <= 1 || toSimulate <= 1) {
        // Exact serial path: same simulator, same order a result()
        // loop would use (its store lookups are resolved above).
        for (Pending &p : pending) {
            if (p.fromStore.has_value())
                commit(p.key, std::move(*p.fromStore));
            else
                simulateAndCommit(p.key, p.cfg);
        }
        return;
    }

    // Replay the true misses concurrently: tasks share only the
    // immutable trace; each gets its own Transmuter and (when metrics
    // are attached) its own registry shard. Nothing shared is written
    // until the barrier.
    std::vector<std::size_t> missing;
    missing.reserve(toSimulate);
    for (std::size_t i = 0; i < pending.size(); ++i)
        if (!pending[i].fromStore.has_value())
            missing.push_back(i);
    std::vector<SimResult> results(missing.size());
    std::vector<obs::MetricRegistry> shards(
        metricsV != nullptr ? missing.size() : 0);
    parallelFor(missing.size(), jobsV, [&](std::size_t i) {
        Transmuter task_sim(wl.params);
        if (metricsV != nullptr)
            task_sim.setMetrics(&shards[i]);
        results[i] = task_sim.run(soa.view(), pending[missing[i]].cfg);
    });

    // Barrier passed: commit store hits and fresh replays interleaved
    // in request order, folding metric shards and checkpointing each
    // replay into the store at its commit point — so the cache, the
    // metrics and the store file bytes all reproduce the serial run
    // exactly.
    std::size_t next = 0;
    for (Pending &p : pending) {
        if (p.fromStore.has_value()) {
            commit(p.key, std::move(*p.fromStore));
            continue;
        }
        if (storeV != nullptr)
            storeV->put(fingerprintV, p.cfg, results[next]);
        commit(p.key, std::move(results[next]));
        if (metricsV != nullptr)
            metricsV->merge(shards[next]);
        ++next;
    }
}

std::vector<HwConfig>
EpochDb::pendingConfigs(std::span<const HwConfig> cfgs) const
{
    std::vector<HwConfig> pending;
    std::unordered_set<std::uint64_t> queued;
    for (const HwConfig &cfg : cfgs) {
        SADAPT_ASSERT(cfg.l1Type == wl.l1Type,
                      "config L1 memory type must match the workload");
        const std::uint64_t k = key(cfg);
        if (cache.contains(k) || !queued.insert(k).second)
            continue;
        if (storeV != nullptr && storeV->contains(fingerprintV, cfg))
            continue;
        pending.push_back(cfg);
    }
    return pending;
}

std::vector<std::size_t>
scheduleSweepCells(std::size_t cellCount,
                   const std::vector<bool> &claimed,
                   unsigned workerIndex, unsigned workerCount)
{
    SADAPT_ASSERT(claimed.size() == cellCount,
                  "claim mask must cover every cell");
    const std::size_t n = cellCount;
    const std::size_t start = n > 0 && workerCount > 0
        ? (static_cast<std::size_t>(workerIndex % workerCount) * n) /
            workerCount
        : 0;
    std::vector<std::size_t> order;
    order.reserve(n);
    for (int wantClaimed = 0; wantClaimed < 2; ++wantClaimed)
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t cell = (start + i) % n;
            if (claimed[cell] == (wantClaimed != 0))
                order.push_back(cell);
        }
    return order;
}

const std::vector<EpochRecord> &
EpochDb::epochs(const HwConfig &cfg)
{
    return result(cfg).epochs;
}

std::size_t
EpochDb::numEpochs()
{
    if (cache.empty())
        result(baselineConfig(wl.l1Type));
    return cache.begin()->second.epochs.size();
}

double
ScheduleEval::gflops() const
{
    return seconds > 0.0 ? flops / seconds / 1e9 : 0.0;
}

double
ScheduleEval::gflopsPerWatt() const
{
    return energy > 0.0 ? flops / energy / 1e9 : 0.0;
}

double
ScheduleEval::metric(OptMode mode) const
{
    return metricValue(mode, flops, seconds, energy);
}

namespace {

ScheduleEval
stitch(EpochDb &db, const Schedule &schedule,
       const ReconfigCostModel &cost_model, OptMode mode,
       const HwConfig &initial, int phase_filter, bool prefix)
{
    if (prefix)
        SADAPT_ASSERT(schedule.configs.size() <= db.numEpochs(),
                      "schedule prefix longer than epoch count");
    else
        SADAPT_ASSERT(schedule.configs.size() == db.numEpochs(),
                      "schedule length must equal epoch count");
    const bool ee = mode == OptMode::EnergyEfficient;
    ScheduleEval ev;
    HwConfig current = initial;
    for (std::size_t e = 0; e < schedule.configs.size(); ++e) {
        const HwConfig &cfg = schedule.configs[e];
        if (!(cfg == current)) {
            const ReconfigCost rc = cost_model.cost(current, cfg, ee);
            ev.reconfigSeconds += rc.seconds;
            ev.reconfigEnergy += rc.energy;
            ev.seconds += rc.seconds;
            ev.energy += rc.energy;
            ++ev.reconfigCount;
            current = cfg;
        }
        const EpochRecord &rec = db.epochs(cfg)[e];
        if (phase_filter >= 0 && rec.phase != phase_filter)
            continue;
        ev.flops += rec.flops;
        ev.seconds += rec.seconds;
        ev.energy += rec.totalEnergy();
    }
    return ev;
}

} // namespace

ScheduleEval
evaluateSchedule(EpochDb &db, const Schedule &schedule,
                 const ReconfigCostModel &cost_model, OptMode mode,
                 const HwConfig &initial)
{
    return stitch(db, schedule, cost_model, mode, initial, -1,
                  false);
}

ScheduleEval
evaluateSchedulePrefix(EpochDb &db, const Schedule &schedule,
                       const ReconfigCostModel &cost_model,
                       OptMode mode, const HwConfig &initial)
{
    return stitch(db, schedule, cost_model, mode, initial, -1, true);
}

ScheduleEval
evaluateScheduleForPhase(EpochDb &db, const Schedule &schedule,
                         const ReconfigCostModel &cost_model,
                         OptMode mode, const HwConfig &initial,
                         int phase)
{
    return stitch(db, schedule, cost_model, mode, initial, phase,
                  false);
}

} // namespace sadapt
