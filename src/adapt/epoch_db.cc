#include "adapt/epoch_db.hh"

#include "common/logging.hh"

namespace sadapt {

EpochDb::EpochDb(const Workload &workload)
    : wl(workload), sim(workload.params)
{
}

std::uint64_t
EpochDb::key(const HwConfig &cfg)
{
    return (static_cast<std::uint64_t>(
                cfg.l1Type == MemType::Spm ? 1 : 0) << 32) |
        cfg.encode();
}

const SimResult &
EpochDb::result(const HwConfig &cfg)
{
    const std::uint64_t k = key(cfg);
    auto it = cache.find(k);
    if (it != cache.end())
        return it->second;
    SimResult res = sim.run(wl.trace, cfg);
    if (!cache.empty()) {
        SADAPT_ASSERT(res.epochs.size() ==
                          cache.begin()->second.epochs.size(),
                      "epoch boundaries must align across configs");
    }
    return cache.emplace(k, std::move(res)).first->second;
}

const std::vector<EpochRecord> &
EpochDb::epochs(const HwConfig &cfg)
{
    return result(cfg).epochs;
}

std::size_t
EpochDb::numEpochs()
{
    if (cache.empty())
        result(baselineConfig(wl.l1Type));
    return cache.begin()->second.epochs.size();
}

double
ScheduleEval::gflops() const
{
    return seconds > 0.0 ? flops / seconds / 1e9 : 0.0;
}

double
ScheduleEval::gflopsPerWatt() const
{
    return energy > 0.0 ? flops / energy / 1e9 : 0.0;
}

double
ScheduleEval::metric(OptMode mode) const
{
    return metricValue(mode, flops, seconds, energy);
}

namespace {

ScheduleEval
stitch(EpochDb &db, const Schedule &schedule,
       const ReconfigCostModel &cost_model, OptMode mode,
       const HwConfig &initial, int phase_filter)
{
    SADAPT_ASSERT(schedule.configs.size() == db.numEpochs(),
                  "schedule length must equal epoch count");
    const bool ee = mode == OptMode::EnergyEfficient;
    ScheduleEval ev;
    HwConfig current = initial;
    for (std::size_t e = 0; e < schedule.configs.size(); ++e) {
        const HwConfig &cfg = schedule.configs[e];
        if (!(cfg == current)) {
            const ReconfigCost rc = cost_model.cost(current, cfg, ee);
            ev.reconfigSeconds += rc.seconds;
            ev.reconfigEnergy += rc.energy;
            ev.seconds += rc.seconds;
            ev.energy += rc.energy;
            ++ev.reconfigCount;
            current = cfg;
        }
        const EpochRecord &rec = db.epochs(cfg)[e];
        if (phase_filter >= 0 && rec.phase != phase_filter)
            continue;
        ev.flops += rec.flops;
        ev.seconds += rec.seconds;
        ev.energy += rec.totalEnergy();
    }
    return ev;
}

} // namespace

ScheduleEval
evaluateSchedule(EpochDb &db, const Schedule &schedule,
                 const ReconfigCostModel &cost_model, OptMode mode,
                 const HwConfig &initial)
{
    return stitch(db, schedule, cost_model, mode, initial, -1);
}

ScheduleEval
evaluateScheduleForPhase(EpochDb &db, const Schedule &schedule,
                         const ReconfigCostModel &cost_model,
                         OptMode mode, const HwConfig &initial,
                         int phase)
{
    return stitch(db, schedule, cost_model, mode, initial, phase);
}

} // namespace sadapt
