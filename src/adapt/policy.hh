/**
 * @file
 * Reconfiguration cost-aware hysteresis policies (Section 4.4):
 * Conservative (never pay flush-class costs), Aggressive (always
 * follow the prediction), Hybrid (pay a dimension's cost only if it is
 * within a tolerance fraction of the previous epoch's elapsed time).
 */

#ifndef SADAPT_ADAPT_POLICY_HH
#define SADAPT_ADAPT_POLICY_HH

#include <string>
#include <vector>

#include "sim/reconfig.hh"

namespace sadapt {

/** The three hysteresis schemes of Section 4.4. */
enum class PolicyKind
{
    Conservative,
    Aggressive,
    Hybrid,
};

/** Human-readable policy name. */
std::string policyKindName(PolicyKind kind);

/** One per-parameter hysteresis verdict of Policy::applyDetailed(). */
struct PolicyDecision
{
    Param param = Param::L1Sharing;
    std::uint32_t from = 0; //!< current value index
    std::uint32_t to = 0;   //!< predicted value index
    bool accepted = false;
    ReconfigCost cost; //!< single-dimension reconfiguration cost
};

/** Filtered configuration plus the per-parameter audit trail. */
struct PolicyOutcome
{
    HwConfig config;
    std::vector<PolicyDecision> decisions; //!< one per differing param
};

/**
 * Filters a predicted configuration against reconfiguration cost.
 */
class Policy
{
  public:
    /**
     * @param kind hysteresis scheme.
     * @param hybrid_tolerance for Hybrid: maximum dimension
     *        reconfiguration time as a fraction of the previous
     *        epoch's elapsed time (Section 5.4 uses 40% for SpMSpV).
     */
    explicit Policy(PolicyKind kind, double hybrid_tolerance = 0.4);

    /**
     * Apply the policy: start from `current` and accept each predicted
     * parameter change only if its cost passes the scheme's test.
     *
     * @param current configuration of the epoch that just ended.
     * @param predicted model output for the next epoch.
     * @param last_epoch_seconds elapsed time of the previous epoch.
     * @param cost_model reconfiguration cost model.
     * @param energy_efficient_mode flush-clock selection mode.
     */
    HwConfig apply(const HwConfig &current, const HwConfig &predicted,
                   Seconds last_epoch_seconds,
                   const ReconfigCostModel &cost_model,
                   bool energy_efficient_mode) const;

    /**
     * apply() plus the decision audit trail: one PolicyDecision per
     * parameter where prediction and current configuration differ.
     * apply() is implemented on top of this, so the chosen
     * configuration is identical whether or not the trail is read.
     */
    PolicyOutcome applyDetailed(const HwConfig &current,
                                const HwConfig &predicted,
                                Seconds last_epoch_seconds,
                                const ReconfigCostModel &cost_model,
                                bool energy_efficient_mode) const;

    PolicyKind kind() const { return kindV; }
    double tolerance() const { return toleranceV; }

  private:
    PolicyKind kindV;
    double toleranceV;
};

} // namespace sadapt

#endif // SADAPT_ADAPT_POLICY_HH
