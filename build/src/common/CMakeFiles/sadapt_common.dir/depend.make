# Empty dependencies file for sadapt_common.
# This may be replaced when dependencies are built.
