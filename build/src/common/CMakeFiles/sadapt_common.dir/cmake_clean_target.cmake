file(REMOVE_RECURSE
  "libsadapt_common.a"
)
