file(REMOVE_RECURSE
  "CMakeFiles/sadapt_common.dir/csv.cc.o"
  "CMakeFiles/sadapt_common.dir/csv.cc.o.d"
  "CMakeFiles/sadapt_common.dir/logging.cc.o"
  "CMakeFiles/sadapt_common.dir/logging.cc.o.d"
  "CMakeFiles/sadapt_common.dir/rng.cc.o"
  "CMakeFiles/sadapt_common.dir/rng.cc.o.d"
  "CMakeFiles/sadapt_common.dir/table.cc.o"
  "CMakeFiles/sadapt_common.dir/table.cc.o.d"
  "libsadapt_common.a"
  "libsadapt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sadapt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
