# Empty compiler generated dependencies file for sadapt_sim.
# This may be replaced when dependencies are built.
