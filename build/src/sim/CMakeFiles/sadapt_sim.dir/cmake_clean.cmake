file(REMOVE_RECURSE
  "CMakeFiles/sadapt_sim.dir/cache.cc.o"
  "CMakeFiles/sadapt_sim.dir/cache.cc.o.d"
  "CMakeFiles/sadapt_sim.dir/config.cc.o"
  "CMakeFiles/sadapt_sim.dir/config.cc.o.d"
  "CMakeFiles/sadapt_sim.dir/counters.cc.o"
  "CMakeFiles/sadapt_sim.dir/counters.cc.o.d"
  "CMakeFiles/sadapt_sim.dir/dvfs.cc.o"
  "CMakeFiles/sadapt_sim.dir/dvfs.cc.o.d"
  "CMakeFiles/sadapt_sim.dir/energy.cc.o"
  "CMakeFiles/sadapt_sim.dir/energy.cc.o.d"
  "CMakeFiles/sadapt_sim.dir/memory.cc.o"
  "CMakeFiles/sadapt_sim.dir/memory.cc.o.d"
  "CMakeFiles/sadapt_sim.dir/prefetcher.cc.o"
  "CMakeFiles/sadapt_sim.dir/prefetcher.cc.o.d"
  "CMakeFiles/sadapt_sim.dir/reconfig.cc.o"
  "CMakeFiles/sadapt_sim.dir/reconfig.cc.o.d"
  "CMakeFiles/sadapt_sim.dir/schedule.cc.o"
  "CMakeFiles/sadapt_sim.dir/schedule.cc.o.d"
  "CMakeFiles/sadapt_sim.dir/trace.cc.o"
  "CMakeFiles/sadapt_sim.dir/trace.cc.o.d"
  "CMakeFiles/sadapt_sim.dir/transmuter.cc.o"
  "CMakeFiles/sadapt_sim.dir/transmuter.cc.o.d"
  "CMakeFiles/sadapt_sim.dir/xbar.cc.o"
  "CMakeFiles/sadapt_sim.dir/xbar.cc.o.d"
  "libsadapt_sim.a"
  "libsadapt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sadapt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
