file(REMOVE_RECURSE
  "libsadapt_sim.a"
)
