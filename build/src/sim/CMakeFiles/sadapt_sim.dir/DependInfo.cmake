
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/sadapt_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/sadapt_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/sim/CMakeFiles/sadapt_sim.dir/config.cc.o" "gcc" "src/sim/CMakeFiles/sadapt_sim.dir/config.cc.o.d"
  "/root/repo/src/sim/counters.cc" "src/sim/CMakeFiles/sadapt_sim.dir/counters.cc.o" "gcc" "src/sim/CMakeFiles/sadapt_sim.dir/counters.cc.o.d"
  "/root/repo/src/sim/dvfs.cc" "src/sim/CMakeFiles/sadapt_sim.dir/dvfs.cc.o" "gcc" "src/sim/CMakeFiles/sadapt_sim.dir/dvfs.cc.o.d"
  "/root/repo/src/sim/energy.cc" "src/sim/CMakeFiles/sadapt_sim.dir/energy.cc.o" "gcc" "src/sim/CMakeFiles/sadapt_sim.dir/energy.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/sadapt_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/sadapt_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/prefetcher.cc" "src/sim/CMakeFiles/sadapt_sim.dir/prefetcher.cc.o" "gcc" "src/sim/CMakeFiles/sadapt_sim.dir/prefetcher.cc.o.d"
  "/root/repo/src/sim/reconfig.cc" "src/sim/CMakeFiles/sadapt_sim.dir/reconfig.cc.o" "gcc" "src/sim/CMakeFiles/sadapt_sim.dir/reconfig.cc.o.d"
  "/root/repo/src/sim/schedule.cc" "src/sim/CMakeFiles/sadapt_sim.dir/schedule.cc.o" "gcc" "src/sim/CMakeFiles/sadapt_sim.dir/schedule.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/sadapt_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/sadapt_sim.dir/trace.cc.o.d"
  "/root/repo/src/sim/transmuter.cc" "src/sim/CMakeFiles/sadapt_sim.dir/transmuter.cc.o" "gcc" "src/sim/CMakeFiles/sadapt_sim.dir/transmuter.cc.o.d"
  "/root/repo/src/sim/xbar.cc" "src/sim/CMakeFiles/sadapt_sim.dir/xbar.cc.o" "gcc" "src/sim/CMakeFiles/sadapt_sim.dir/xbar.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sadapt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
