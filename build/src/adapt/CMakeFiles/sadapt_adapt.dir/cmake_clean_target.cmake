file(REMOVE_RECURSE
  "libsadapt_adapt.a"
)
