file(REMOVE_RECURSE
  "CMakeFiles/sadapt_adapt.dir/controllers.cc.o"
  "CMakeFiles/sadapt_adapt.dir/controllers.cc.o.d"
  "CMakeFiles/sadapt_adapt.dir/epoch_db.cc.o"
  "CMakeFiles/sadapt_adapt.dir/epoch_db.cc.o.d"
  "CMakeFiles/sadapt_adapt.dir/history.cc.o"
  "CMakeFiles/sadapt_adapt.dir/history.cc.o.d"
  "CMakeFiles/sadapt_adapt.dir/metrics.cc.o"
  "CMakeFiles/sadapt_adapt.dir/metrics.cc.o.d"
  "CMakeFiles/sadapt_adapt.dir/policy.cc.o"
  "CMakeFiles/sadapt_adapt.dir/policy.cc.o.d"
  "CMakeFiles/sadapt_adapt.dir/predictor.cc.o"
  "CMakeFiles/sadapt_adapt.dir/predictor.cc.o.d"
  "CMakeFiles/sadapt_adapt.dir/runner.cc.o"
  "CMakeFiles/sadapt_adapt.dir/runner.cc.o.d"
  "CMakeFiles/sadapt_adapt.dir/search.cc.o"
  "CMakeFiles/sadapt_adapt.dir/search.cc.o.d"
  "CMakeFiles/sadapt_adapt.dir/telemetry.cc.o"
  "CMakeFiles/sadapt_adapt.dir/telemetry.cc.o.d"
  "CMakeFiles/sadapt_adapt.dir/trainer.cc.o"
  "CMakeFiles/sadapt_adapt.dir/trainer.cc.o.d"
  "CMakeFiles/sadapt_adapt.dir/workload.cc.o"
  "CMakeFiles/sadapt_adapt.dir/workload.cc.o.d"
  "libsadapt_adapt.a"
  "libsadapt_adapt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sadapt_adapt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
