# Empty compiler generated dependencies file for sadapt_adapt.
# This may be replaced when dependencies are built.
