
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adapt/controllers.cc" "src/adapt/CMakeFiles/sadapt_adapt.dir/controllers.cc.o" "gcc" "src/adapt/CMakeFiles/sadapt_adapt.dir/controllers.cc.o.d"
  "/root/repo/src/adapt/epoch_db.cc" "src/adapt/CMakeFiles/sadapt_adapt.dir/epoch_db.cc.o" "gcc" "src/adapt/CMakeFiles/sadapt_adapt.dir/epoch_db.cc.o.d"
  "/root/repo/src/adapt/history.cc" "src/adapt/CMakeFiles/sadapt_adapt.dir/history.cc.o" "gcc" "src/adapt/CMakeFiles/sadapt_adapt.dir/history.cc.o.d"
  "/root/repo/src/adapt/metrics.cc" "src/adapt/CMakeFiles/sadapt_adapt.dir/metrics.cc.o" "gcc" "src/adapt/CMakeFiles/sadapt_adapt.dir/metrics.cc.o.d"
  "/root/repo/src/adapt/policy.cc" "src/adapt/CMakeFiles/sadapt_adapt.dir/policy.cc.o" "gcc" "src/adapt/CMakeFiles/sadapt_adapt.dir/policy.cc.o.d"
  "/root/repo/src/adapt/predictor.cc" "src/adapt/CMakeFiles/sadapt_adapt.dir/predictor.cc.o" "gcc" "src/adapt/CMakeFiles/sadapt_adapt.dir/predictor.cc.o.d"
  "/root/repo/src/adapt/runner.cc" "src/adapt/CMakeFiles/sadapt_adapt.dir/runner.cc.o" "gcc" "src/adapt/CMakeFiles/sadapt_adapt.dir/runner.cc.o.d"
  "/root/repo/src/adapt/search.cc" "src/adapt/CMakeFiles/sadapt_adapt.dir/search.cc.o" "gcc" "src/adapt/CMakeFiles/sadapt_adapt.dir/search.cc.o.d"
  "/root/repo/src/adapt/telemetry.cc" "src/adapt/CMakeFiles/sadapt_adapt.dir/telemetry.cc.o" "gcc" "src/adapt/CMakeFiles/sadapt_adapt.dir/telemetry.cc.o.d"
  "/root/repo/src/adapt/trainer.cc" "src/adapt/CMakeFiles/sadapt_adapt.dir/trainer.cc.o" "gcc" "src/adapt/CMakeFiles/sadapt_adapt.dir/trainer.cc.o.d"
  "/root/repo/src/adapt/workload.cc" "src/adapt/CMakeFiles/sadapt_adapt.dir/workload.cc.o" "gcc" "src/adapt/CMakeFiles/sadapt_adapt.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sadapt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/sadapt_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/sadapt_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/sadapt_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sadapt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
