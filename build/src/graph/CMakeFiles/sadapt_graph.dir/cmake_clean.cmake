file(REMOVE_RECURSE
  "CMakeFiles/sadapt_graph.dir/graph_algorithms.cc.o"
  "CMakeFiles/sadapt_graph.dir/graph_algorithms.cc.o.d"
  "libsadapt_graph.a"
  "libsadapt_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sadapt_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
