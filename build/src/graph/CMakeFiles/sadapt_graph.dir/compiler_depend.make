# Empty compiler generated dependencies file for sadapt_graph.
# This may be replaced when dependencies are built.
