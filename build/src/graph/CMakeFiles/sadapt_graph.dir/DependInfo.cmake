
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph_algorithms.cc" "src/graph/CMakeFiles/sadapt_graph.dir/graph_algorithms.cc.o" "gcc" "src/graph/CMakeFiles/sadapt_graph.dir/graph_algorithms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/sadapt_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sadapt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/sadapt_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sadapt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
