file(REMOVE_RECURSE
  "libsadapt_graph.a"
)
