file(REMOVE_RECURSE
  "CMakeFiles/sadapt_ml.dir/cross_validation.cc.o"
  "CMakeFiles/sadapt_ml.dir/cross_validation.cc.o.d"
  "CMakeFiles/sadapt_ml.dir/dataset.cc.o"
  "CMakeFiles/sadapt_ml.dir/dataset.cc.o.d"
  "CMakeFiles/sadapt_ml.dir/decision_tree.cc.o"
  "CMakeFiles/sadapt_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/sadapt_ml.dir/linear_model.cc.o"
  "CMakeFiles/sadapt_ml.dir/linear_model.cc.o.d"
  "CMakeFiles/sadapt_ml.dir/random_forest.cc.o"
  "CMakeFiles/sadapt_ml.dir/random_forest.cc.o.d"
  "libsadapt_ml.a"
  "libsadapt_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sadapt_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
