# Empty compiler generated dependencies file for sadapt_ml.
# This may be replaced when dependencies are built.
