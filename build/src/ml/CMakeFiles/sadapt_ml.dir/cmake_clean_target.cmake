file(REMOVE_RECURSE
  "libsadapt_ml.a"
)
