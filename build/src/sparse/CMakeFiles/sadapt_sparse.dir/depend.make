# Empty dependencies file for sadapt_sparse.
# This may be replaced when dependencies are built.
