
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/coo.cc" "src/sparse/CMakeFiles/sadapt_sparse.dir/coo.cc.o" "gcc" "src/sparse/CMakeFiles/sadapt_sparse.dir/coo.cc.o.d"
  "/root/repo/src/sparse/csc.cc" "src/sparse/CMakeFiles/sadapt_sparse.dir/csc.cc.o" "gcc" "src/sparse/CMakeFiles/sadapt_sparse.dir/csc.cc.o.d"
  "/root/repo/src/sparse/csr.cc" "src/sparse/CMakeFiles/sadapt_sparse.dir/csr.cc.o" "gcc" "src/sparse/CMakeFiles/sadapt_sparse.dir/csr.cc.o.d"
  "/root/repo/src/sparse/generators.cc" "src/sparse/CMakeFiles/sadapt_sparse.dir/generators.cc.o" "gcc" "src/sparse/CMakeFiles/sadapt_sparse.dir/generators.cc.o.d"
  "/root/repo/src/sparse/io.cc" "src/sparse/CMakeFiles/sadapt_sparse.dir/io.cc.o" "gcc" "src/sparse/CMakeFiles/sadapt_sparse.dir/io.cc.o.d"
  "/root/repo/src/sparse/reference.cc" "src/sparse/CMakeFiles/sadapt_sparse.dir/reference.cc.o" "gcc" "src/sparse/CMakeFiles/sadapt_sparse.dir/reference.cc.o.d"
  "/root/repo/src/sparse/sparse_vector.cc" "src/sparse/CMakeFiles/sadapt_sparse.dir/sparse_vector.cc.o" "gcc" "src/sparse/CMakeFiles/sadapt_sparse.dir/sparse_vector.cc.o.d"
  "/root/repo/src/sparse/stats.cc" "src/sparse/CMakeFiles/sadapt_sparse.dir/stats.cc.o" "gcc" "src/sparse/CMakeFiles/sadapt_sparse.dir/stats.cc.o.d"
  "/root/repo/src/sparse/suite.cc" "src/sparse/CMakeFiles/sadapt_sparse.dir/suite.cc.o" "gcc" "src/sparse/CMakeFiles/sadapt_sparse.dir/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sadapt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
