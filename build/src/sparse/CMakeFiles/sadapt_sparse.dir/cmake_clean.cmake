file(REMOVE_RECURSE
  "CMakeFiles/sadapt_sparse.dir/coo.cc.o"
  "CMakeFiles/sadapt_sparse.dir/coo.cc.o.d"
  "CMakeFiles/sadapt_sparse.dir/csc.cc.o"
  "CMakeFiles/sadapt_sparse.dir/csc.cc.o.d"
  "CMakeFiles/sadapt_sparse.dir/csr.cc.o"
  "CMakeFiles/sadapt_sparse.dir/csr.cc.o.d"
  "CMakeFiles/sadapt_sparse.dir/generators.cc.o"
  "CMakeFiles/sadapt_sparse.dir/generators.cc.o.d"
  "CMakeFiles/sadapt_sparse.dir/io.cc.o"
  "CMakeFiles/sadapt_sparse.dir/io.cc.o.d"
  "CMakeFiles/sadapt_sparse.dir/reference.cc.o"
  "CMakeFiles/sadapt_sparse.dir/reference.cc.o.d"
  "CMakeFiles/sadapt_sparse.dir/sparse_vector.cc.o"
  "CMakeFiles/sadapt_sparse.dir/sparse_vector.cc.o.d"
  "CMakeFiles/sadapt_sparse.dir/stats.cc.o"
  "CMakeFiles/sadapt_sparse.dir/stats.cc.o.d"
  "CMakeFiles/sadapt_sparse.dir/suite.cc.o"
  "CMakeFiles/sadapt_sparse.dir/suite.cc.o.d"
  "libsadapt_sparse.a"
  "libsadapt_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sadapt_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
