file(REMOVE_RECURSE
  "libsadapt_sparse.a"
)
