file(REMOVE_RECURSE
  "CMakeFiles/sadapt_kernels.dir/conv.cc.o"
  "CMakeFiles/sadapt_kernels.dir/conv.cc.o.d"
  "CMakeFiles/sadapt_kernels.dir/gemm.cc.o"
  "CMakeFiles/sadapt_kernels.dir/gemm.cc.o.d"
  "CMakeFiles/sadapt_kernels.dir/inner_spgemm.cc.o"
  "CMakeFiles/sadapt_kernels.dir/inner_spgemm.cc.o.d"
  "CMakeFiles/sadapt_kernels.dir/spmspm.cc.o"
  "CMakeFiles/sadapt_kernels.dir/spmspm.cc.o.d"
  "CMakeFiles/sadapt_kernels.dir/spmspv.cc.o"
  "CMakeFiles/sadapt_kernels.dir/spmspv.cc.o.d"
  "libsadapt_kernels.a"
  "libsadapt_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sadapt_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
