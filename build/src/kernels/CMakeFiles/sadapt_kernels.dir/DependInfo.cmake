
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/conv.cc" "src/kernels/CMakeFiles/sadapt_kernels.dir/conv.cc.o" "gcc" "src/kernels/CMakeFiles/sadapt_kernels.dir/conv.cc.o.d"
  "/root/repo/src/kernels/gemm.cc" "src/kernels/CMakeFiles/sadapt_kernels.dir/gemm.cc.o" "gcc" "src/kernels/CMakeFiles/sadapt_kernels.dir/gemm.cc.o.d"
  "/root/repo/src/kernels/inner_spgemm.cc" "src/kernels/CMakeFiles/sadapt_kernels.dir/inner_spgemm.cc.o" "gcc" "src/kernels/CMakeFiles/sadapt_kernels.dir/inner_spgemm.cc.o.d"
  "/root/repo/src/kernels/spmspm.cc" "src/kernels/CMakeFiles/sadapt_kernels.dir/spmspm.cc.o" "gcc" "src/kernels/CMakeFiles/sadapt_kernels.dir/spmspm.cc.o.d"
  "/root/repo/src/kernels/spmspv.cc" "src/kernels/CMakeFiles/sadapt_kernels.dir/spmspv.cc.o" "gcc" "src/kernels/CMakeFiles/sadapt_kernels.dir/spmspv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sadapt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/sadapt_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sadapt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
