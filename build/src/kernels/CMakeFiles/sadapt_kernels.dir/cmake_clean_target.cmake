file(REMOVE_RECURSE
  "libsadapt_kernels.a"
)
