# Empty dependencies file for sadapt_kernels.
# This may be replaced when dependencies are built.
