
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_cache_differential.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_cache_differential.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_cache_differential.cc.o.d"
  "/root/repo/tests/test_config.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_config.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_config.cc.o.d"
  "/root/repo/tests/test_controllers.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_controllers.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_controllers.cc.o.d"
  "/root/repo/tests/test_coo.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_coo.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_coo.cc.o.d"
  "/root/repo/tests/test_csr_csc.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_csr_csc.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_csr_csc.cc.o.d"
  "/root/repo/tests/test_csv_table.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_csv_table.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_csv_table.cc.o.d"
  "/root/repo/tests/test_dvfs.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_dvfs.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_dvfs.cc.o.d"
  "/root/repo/tests/test_energy.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_energy.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_energy.cc.o.d"
  "/root/repo/tests/test_epoch_db.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_epoch_db.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_epoch_db.cc.o.d"
  "/root/repo/tests/test_generators.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_generators.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_generators.cc.o.d"
  "/root/repo/tests/test_graph.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_graph.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_graph.cc.o.d"
  "/root/repo/tests/test_history.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_history.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_history.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_io.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_io.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_io.cc.o.d"
  "/root/repo/tests/test_kernels.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_kernels.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_kernels.cc.o.d"
  "/root/repo/tests/test_metrics_telemetry.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_metrics_telemetry.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_metrics_telemetry.cc.o.d"
  "/root/repo/tests/test_ml.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_ml.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_ml.cc.o.d"
  "/root/repo/tests/test_oracle_bruteforce.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_oracle_bruteforce.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_oracle_bruteforce.cc.o.d"
  "/root/repo/tests/test_prefetcher.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_prefetcher.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_prefetcher.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_reconfig.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_reconfig.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_reconfig.cc.o.d"
  "/root/repo/tests/test_reference.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_reference.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_reference.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_search_policy.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_search_policy.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_search_policy.cc.o.d"
  "/root/repo/tests/test_sim_edge_cases.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_sim_edge_cases.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_sim_edge_cases.cc.o.d"
  "/root/repo/tests/test_sparse_vector.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_sparse_vector.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_sparse_vector.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_stitching_validation.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_stitching_validation.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_stitching_validation.cc.o.d"
  "/root/repo/tests/test_suite.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_suite.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_suite.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_trainer_predictor.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_trainer_predictor.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_trainer_predictor.cc.o.d"
  "/root/repo/tests/test_transmuter.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_transmuter.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_transmuter.cc.o.d"
  "/root/repo/tests/test_workload_runner.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_workload_runner.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_workload_runner.cc.o.d"
  "/root/repo/tests/test_xbar_memory.cc" "tests/CMakeFiles/sparseadapt_tests.dir/test_xbar_memory.cc.o" "gcc" "tests/CMakeFiles/sparseadapt_tests.dir/test_xbar_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sadapt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/sadapt_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sadapt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/sadapt_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/sadapt_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/adapt/CMakeFiles/sadapt_adapt.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sadapt_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
