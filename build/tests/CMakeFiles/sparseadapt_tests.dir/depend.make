# Empty dependencies file for sparseadapt_tests.
# This may be replaced when dependencies are built.
