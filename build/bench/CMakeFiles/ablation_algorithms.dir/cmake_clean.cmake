file(REMOVE_RECURSE
  "CMakeFiles/ablation_algorithms.dir/ablation_algorithms.cc.o"
  "CMakeFiles/ablation_algorithms.dir/ablation_algorithms.cc.o.d"
  "ablation_algorithms"
  "ablation_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
