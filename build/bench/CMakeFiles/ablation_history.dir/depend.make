# Empty dependencies file for ablation_history.
# This may be replaced when dependencies are built.
