file(REMOVE_RECURSE
  "CMakeFiles/fig11_policy_bandwidth.dir/fig11_policy_bandwidth.cc.o"
  "CMakeFiles/fig11_policy_bandwidth.dir/fig11_policy_bandwidth.cc.o.d"
  "fig11_policy_bandwidth"
  "fig11_policy_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_policy_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
