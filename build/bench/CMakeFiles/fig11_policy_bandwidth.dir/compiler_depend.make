# Empty compiler generated dependencies file for fig11_policy_bandwidth.
# This may be replaced when dependencies are built.
