# Empty dependencies file for fig06_spmspm_realworld.
# This may be replaced when dependencies are built.
