file(REMOVE_RECURSE
  "CMakeFiles/fig06_spmspm_realworld.dir/fig06_spmspm_realworld.cc.o"
  "CMakeFiles/fig06_spmspm_realworld.dir/fig06_spmspm_realworld.cc.o.d"
  "fig06_spmspm_realworld"
  "fig06_spmspm_realworld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_spmspm_realworld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
