# Empty compiler generated dependencies file for fig12_system_size.
# This may be replaced when dependencies are built.
