file(REMOVE_RECURSE
  "CMakeFiles/fig12_system_size.dir/fig12_system_size.cc.o"
  "CMakeFiles/fig12_system_size.dir/fig12_system_size.cc.o.d"
  "fig12_system_size"
  "fig12_system_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_system_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
