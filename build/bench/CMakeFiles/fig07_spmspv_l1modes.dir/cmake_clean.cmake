file(REMOVE_RECURSE
  "CMakeFiles/fig07_spmspv_l1modes.dir/fig07_spmspv_l1modes.cc.o"
  "CMakeFiles/fig07_spmspv_l1modes.dir/fig07_spmspv_l1modes.cc.o.d"
  "fig07_spmspv_l1modes"
  "fig07_spmspv_l1modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_spmspv_l1modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
