# Empty compiler generated dependencies file for fig07_spmspv_l1modes.
# This may be replaced when dependencies are built.
