file(REMOVE_RECURSE
  "CMakeFiles/sec64_profileadapt.dir/sec64_profileadapt.cc.o"
  "CMakeFiles/sec64_profileadapt.dir/sec64_profileadapt.cc.o.d"
  "sec64_profileadapt"
  "sec64_profileadapt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec64_profileadapt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
