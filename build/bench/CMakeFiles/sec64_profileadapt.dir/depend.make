# Empty dependencies file for sec64_profileadapt.
# This may be replaced when dependencies are built.
