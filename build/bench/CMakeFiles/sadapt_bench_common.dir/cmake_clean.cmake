file(REMOVE_RECURSE
  "CMakeFiles/sadapt_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/sadapt_bench_common.dir/bench_common.cc.o.d"
  "libsadapt_bench_common.a"
  "libsadapt_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sadapt_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
