# Empty dependencies file for sadapt_bench_common.
# This may be replaced when dependencies are built.
