file(REMOVE_RECURSE
  "libsadapt_bench_common.a"
)
