# Empty dependencies file for ablation_stitching.
# This may be replaced when dependencies are built.
