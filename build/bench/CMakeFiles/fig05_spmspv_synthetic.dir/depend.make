# Empty dependencies file for fig05_spmspv_synthetic.
# This may be replaced when dependencies are built.
