file(REMOVE_RECURSE
  "CMakeFiles/fig05_spmspv_synthetic.dir/fig05_spmspv_synthetic.cc.o"
  "CMakeFiles/fig05_spmspv_synthetic.dir/fig05_spmspv_synthetic.cc.o.d"
  "fig05_spmspv_synthetic"
  "fig05_spmspv_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_spmspv_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
