file(REMOVE_RECURSE
  "CMakeFiles/fig10_feature_importance.dir/fig10_feature_importance.cc.o"
  "CMakeFiles/fig10_feature_importance.dir/fig10_feature_importance.cc.o.d"
  "fig10_feature_importance"
  "fig10_feature_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_feature_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
