
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig09_model_complexity.cc" "bench/CMakeFiles/fig09_model_complexity.dir/fig09_model_complexity.cc.o" "gcc" "bench/CMakeFiles/fig09_model_complexity.dir/fig09_model_complexity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/sadapt_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/adapt/CMakeFiles/sadapt_adapt.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/sadapt_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sadapt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/sadapt_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sadapt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/sadapt_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sadapt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
