file(REMOVE_RECURSE
  "CMakeFiles/fig09_model_complexity.dir/fig09_model_complexity.cc.o"
  "CMakeFiles/fig09_model_complexity.dir/fig09_model_complexity.cc.o.d"
  "fig09_model_complexity"
  "fig09_model_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_model_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
