file(REMOVE_RECURSE
  "CMakeFiles/ablation_regular_kernels.dir/ablation_regular_kernels.cc.o"
  "CMakeFiles/ablation_regular_kernels.dir/ablation_regular_kernels.cc.o.d"
  "ablation_regular_kernels"
  "ablation_regular_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_regular_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
