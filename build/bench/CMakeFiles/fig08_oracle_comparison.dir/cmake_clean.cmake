file(REMOVE_RECURSE
  "CMakeFiles/fig08_oracle_comparison.dir/fig08_oracle_comparison.cc.o"
  "CMakeFiles/fig08_oracle_comparison.dir/fig08_oracle_comparison.cc.o.d"
  "fig08_oracle_comparison"
  "fig08_oracle_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_oracle_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
