# Empty dependencies file for table6_graph_algorithms.
# This may be replaced when dependencies are built.
