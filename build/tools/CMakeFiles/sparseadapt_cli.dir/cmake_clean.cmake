file(REMOVE_RECURSE
  "CMakeFiles/sparseadapt_cli.dir/sparseadapt_cli.cc.o"
  "CMakeFiles/sparseadapt_cli.dir/sparseadapt_cli.cc.o.d"
  "sparseadapt_cli"
  "sparseadapt_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparseadapt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
