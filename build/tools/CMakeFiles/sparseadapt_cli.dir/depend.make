# Empty dependencies file for sparseadapt_cli.
# This may be replaced when dependencies are built.
